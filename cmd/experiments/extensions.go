package main

// Extension experiments beyond the paper's own artifacts: ablations of the
// design choices DESIGN.md calls out (refresh period, link delay, ring
// size), a superstabilization-flavored single-fault analysis (the paper's
// future-work pointer to Katayama et al. [15]), and the (m, 2m)
// critical-section composition (the (ℓ,k)-CS family of reference [9]).

import (
	"fmt"
	"math/rand"
	"time"

	"ssrmin/internal/adversary"
	"ssrmin/internal/check"
	"ssrmin/internal/compose"
	"ssrmin/internal/core"
	"ssrmin/internal/cst"
	"ssrmin/internal/daemon"
	"ssrmin/internal/dijkstra"
	"ssrmin/internal/herman"
	"ssrmin/internal/msgnet"
	"ssrmin/internal/netring"
	"ssrmin/internal/parsweep"
	"ssrmin/internal/statemodel"
	"ssrmin/internal/stats"
	"ssrmin/internal/synchro"
	"ssrmin/internal/verify"
)

func init() {
	register(200, "singlefault", "Ablation: exact recovery cost and census excursion after ONE transient fault", runSingleFault)
	register(210, "refresh", "Ablation: stabilization time and overhead vs cache-refresh period", runRefreshSweep)
	register(220, "delay", "Ablation: census mix and advance rate vs link delay", runDelaySweep)
	register(230, "scaling", "Ablation: advance rate and message cost vs ring size", runScaling)
	register(240, "corruption", "Ablation: healing under sustained message corruption", runCorruption)
	register(250, "lkcs", "(m,2m)-critical section via m composed SSRmin instances", runLKCS)
}

// runSingleFault measures recovery from a single transient fault — the
// superstabilization question (the paper's future work cites Katayama et
// al.'s superstabilizing mutual exclusion). For n=3 the analysis is exact:
// every legitimate configuration is perturbed in every process to every
// other local state; the model checker's distance map gives the exact
// worst-case steps back to Λ, and a BFS bounds the worst census excursion
// on the way.
func runSingleFault(cfg runConfig) {
	a := core.New(3, 4)
	c := check.New[core.State](a, 0)
	dist, rep := c.Distances(a.Legitimate)
	if !rep.Converges {
		fmt.Println("FAIL: base convergence broken")
		return
	}

	worst := 0
	var worstCfg statemodel.Config[core.State]
	histo := map[int]int{}
	minCensus, maxCensus := 1<<30, -1
	faults := 0
	for _, legit := range a.LegitimateConfigs() {
		for i := 0; i < a.N(); i++ {
			for _, alt := range a.AllStates() {
				if alt == legit[i] {
					continue
				}
				faulty := legit.Clone()
				faulty[i] = alt
				faults++
				d := dist[c.Encode(faulty)]
				histo[d]++
				if d > worst {
					worst = d
					worstCfg = faulty
				}
				tc := verify.Count(faulty)
				if tc.Privileged < minCensus {
					minCensus = tc.Privileged
				}
				if tc.Privileged > maxCensus {
					maxCensus = tc.Privileged
				}
			}
		}
	}
	fmt.Printf("n=3 K=4: %d single-fault configurations analyzed exactly\n\n", faults)
	tb := newTable("recovery steps", "single-fault configs")
	for d := 0; d <= worst; d++ {
		if histo[d] > 0 {
			tb.AddRow(d, histo[d])
		}
	}
	printTable(tb)
	fmt.Printf("\nworst case: %d steps (vs %d from the worst arbitrary configuration),\n", worst, rep.WorstSteps)
	fmt.Printf("e.g. from %v\n", worstCfg)
	fmt.Printf("census immediately after a single fault: %d..%d privileged\n", minCensus, maxCensus)
	fmt.Println("\nNotably, the global worst case is already reachable by a SINGLE fault")
	fmt.Println("(corrupting one handshake bit next to the holder): SSRmin is")
	fmt.Println("self-stabilizing but not superstabilizing. The census can briefly")
	fmt.Println("reach 3 (never 0 here). A superstabilizing variant — the paper's")
	fmt.Println("future-work pointer to Katayama et al. [15] — would bound both.")
}

func runRefreshSweep(cfg runConfig) {
	tb := newTable("refresh (s)", "stabilized by (s)", "msgs/s", "advances/s")
	horizon := msgnet.Time(60)
	if cfg.quick {
		horizon = 20
	}
	for _, refresh := range []msgnet.Time{0.02, 0.05, 0.1, 0.2, 0.5} {
		a := core.New(6, 8)
		init := make(statemodel.Config[core.State], 6)
		inj := newRand(cfg.seed)
		for i := range init {
			init[i] = core.State{X: inj.Intn(8), RTS: inj.Intn(2) == 1, TRA: inj.Intn(2) == 1}
		}
		r := cst.NewRing[core.State](a, init, cst.Options[core.State]{
			Link:           msgnet.LinkParams{Delay: mpDelay, Jitter: mpJitter, LossProb: 0.05},
			Refresh:        refresh,
			Seed:           cfg.seed,
			CoherentCaches: false,
		})
		lastBad := 0.0
		advances := 0
		for _, nd := range r.Nodes {
			nd.OnExecute = func(now msgnet.Time, rule int) {
				if rule == core.RuleSendPrimary {
					advances++
				}
			}
		}
		r.Net.Observer = func(now msgnet.Time) {
			c := r.Census(core.HasToken)
			if c < 1 || c > 2 {
				lastBad = float64(now)
			}
		}
		r.Net.Run(horizon)
		st := r.Net.Stats()
		tb.AddRow(float64(refresh), fmt.Sprintf("%.2f", lastBad),
			float64(st.Sent)/float64(horizon), float64(advances)/float64(horizon))
	}
	printTable(tb)
	fmt.Println("\nStabilization is quick at every refresh period and the advance rate")
	fmt.Println("barely moves, because Algorithm 4 also evaluates a rule on every")
	fmt.Println("receipt — the echo traffic, not the timer, drives progress. Slower")
	fmt.Println("refresh only trims the message rate; its real role is healing lost")
	fmt.Println("updates and corrupted caches (see the corruption ablation).")
}

func runDelaySweep(cfg runConfig) {
	tb := newTable("delay (s)", "1 holder", "2 holders", "advances/s", "violations")
	horizon := msgnet.Time(60)
	if cfg.quick {
		horizon = 20
	}
	for _, delay := range []msgnet.Time{0.001, 0.005, 0.01, 0.05, 0.1} {
		a := core.New(5, 6)
		r := cst.NewRing[core.State](a, a.InitialLegitimate(), cst.Options[core.State]{
			Link:           msgnet.LinkParams{Delay: delay, Jitter: delay / 5},
			Refresh:        5 * delay,
			Seed:           cfg.seed,
			CoherentCaches: true,
		})
		var tl verify.Timeline
		mon := verify.Monitor{Bounds: verify.SSRminBounds}
		advances := 0
		for _, nd := range r.Nodes {
			nd.OnExecute = func(now msgnet.Time, rule int) {
				if rule == core.RuleSendPrimary {
					advances++
				}
			}
		}
		r.Net.Observer = func(now msgnet.Time) {
			c := r.Census(core.HasToken)
			tl.Record(float64(now), c)
			mon.Observe(float64(now), c)
		}
		r.Net.Run(horizon)
		tl.Close(float64(r.Net.Now()))
		tb.AddRow(float64(delay), pct(tl.Fraction(1)), pct(tl.Fraction(2)),
			float64(advances)/float64(horizon), len(mon.Violations))
	}
	printTable(tb)
	fmt.Println("\nWith the refresh period scaled to the delay, the census mix is")
	fmt.Println("delay-invariant (≈2/3 one holder, ≈1/3 two) while the advance rate")
	fmt.Println("falls ∝ 1/delay — and the 1–2 invariant holds at every delay")
	fmt.Println("(violations = 0).")
}

func runScaling(cfg runConfig) {
	tb := newTable("n", "advances/s", "msgs/s", "msgs/advance", "violations")
	horizon := msgnet.Time(30)
	ns := []int{4, 8, 16, 32, 64}
	if cfg.quick {
		ns = []int{4, 8, 16}
	}
	for _, n := range ns {
		a := core.New(n, n+1)
		r := cst.NewRing[core.State](a, a.InitialLegitimate(), cst.Options[core.State]{
			Link:           msgnet.LinkParams{Delay: mpDelay, Jitter: mpJitter},
			Refresh:        mpRefresh,
			Seed:           cfg.seed,
			CoherentCaches: true,
		})
		mon := verify.Monitor{Bounds: verify.SSRminBounds}
		advances := 0
		for _, nd := range r.Nodes {
			nd.OnExecute = func(now msgnet.Time, rule int) {
				if rule == core.RuleSendPrimary {
					advances++
				}
			}
		}
		r.Net.Observer = func(now msgnet.Time) {
			mon.Observe(float64(now), r.Census(core.HasToken))
		}
		r.Net.Run(horizon)
		st := r.Net.Stats()
		tb.AddRow(n, float64(advances)/float64(horizon), float64(st.Sent)/float64(horizon),
			float64(st.Sent)/float64(max(advances, 1)), len(mon.Violations))
	}
	printTable(tb)
	fmt.Println("\nThe advance rate is delay-bound (a single privilege walks the ring),")
	fmt.Println("while the background announcement traffic grows linearly with n —")
	fmt.Println("so messages-per-advance grows ≈ linearly. The 1–2 invariant holds at")
	fmt.Println("every size.")
}

func runCorruption(cfg runConfig) {
	tb := newTable("corrupt prob", "corrupted msgs", "bad time (s)", "bad time (%)", "census at end")
	horizon := msgnet.Time(120)
	if cfg.quick {
		horizon = 40
	}
	for _, p := range []float64{0.001, 0.01, 0.05} {
		a := core.New(5, 6)
		r := cst.NewRing[core.State](a, a.InitialLegitimate(), cst.Options[core.State]{
			Link:           msgnet.LinkParams{Delay: mpDelay, Jitter: mpJitter, CorruptProb: p},
			Refresh:        mpRefresh,
			Seed:           cfg.seed,
			CoherentCaches: true,
		})
		r.Net.Corrupt = func(rng *rand.Rand, payload core.State) core.State {
			return core.State{X: rng.Intn(6), RTS: rng.Intn(2) == 1, TRA: rng.Intn(2) == 1}
		}
		var tl verify.Timeline
		r.Net.Observer = func(now msgnet.Time) {
			c := r.Census(core.HasToken)
			if c >= 1 && c <= 2 {
				c = 1 // collapse the good band
			} else {
				c = 0 // bad instant
			}
			tl.Record(float64(now), c)
		}
		r.Net.Run(horizon)
		tl.Close(float64(r.Net.Now()))
		tb.AddRow(p, r.Net.Stats().Corrupted, tl.Duration(0), pct(tl.Fraction(0)), r.Census(core.HasToken))
	}
	printTable(tb)
	fmt.Println("\nSustained random payload corruption keeps knocking caches over, and")
	fmt.Println("the refresh + fix rules keep healing them: even at 5% corruption the")
	fmt.Println("census spends only a small fraction of time outside [1,2], and the")
	fmt.Println("system is healthy whenever corruption pauses (self-stabilization).")
}

func runLKCS(cfg runConfig) {
	tb := newTable("m (instances)", "steps", "grants range", "distinct holders range", "spec (m,2m)")
	steps := 2000
	if cfg.quick {
		steps = 400
	}
	for m := 1; m <= 3; m++ {
		inner := core.New(6, 7)
		c := compose.New[core.State](inner, m)
		// Stagger the instances around the ring.
		parts := make([]statemodel.Config[core.State], m)
		for j := range parts {
			sim := statemodel.NewSimulator[core.State](inner, daemon.NewCentralLowest(), inner.InitialLegitimate())
			sim.Run(3 * 2 * j)
			parts[j] = sim.Config()
		}
		sim := statemodel.NewSimulator[compose.MultiState[core.State]](c,
			daemon.NewRandomSubset(newRand(cfg.seed), 0.5), c.Pack(parts...))
		minG, maxG := 1<<30, -1
		minH, maxH := 1<<30, -1
		ok := true
		for s := 0; s < steps; s++ {
			if _, alive := sim.Step(); !alive {
				ok = false
				break
			}
			g := c.Grants(sim.Config(), core.HasToken)
			h := len(c.HoldersAny(sim.Config(), core.HasToken))
			minG, maxG = min(minG, g), max(maxG, g)
			minH, maxH = min(minH, h), max(maxH, h)
		}
		verdict := "PASS"
		if !ok || minG < m || maxG > 2*m {
			verdict = "FAIL"
		}
		tb.AddRow(m, steps, fmt.Sprintf("%d..%d", minG, maxG),
			fmt.Sprintf("%d..%d", minH, maxH), verdict)
	}
	printTable(tb)
	fmt.Println("\nComposing m independent SSRmin instances yields a (m, 2m)-critical-")
	fmt.Println("section system in the sense of reference [9]: the number of privilege")
	fmt.Println("grants stays within [m, 2m] at every step after convergence.")
}

func init() {
	register(260, "outage", "Model boundary: permanent link cut vs the eventual-delivery assumption", runOutage)
}

// runOutage cuts one ring edge for a while and measures coverage. It
// documents the boundary of Theorem 3: the model-gap tolerance needs every
// state update to be *eventually* delivered (Lemma 9's fairness). A
// permanent duplex cut can freeze exactly the caches the token predicates
// read, and the ring goes dark until the edge heals — after which
// self-stabilization restores the 1–2 regime unaided.
func runOutage(cfg runConfig) {
	tb := newTable("seed", "dark during cut (s)", "dark after heal+settle (s)", "recovered")
	seeds := []int64{1, 2, 3, 4, 5}
	if cfg.quick {
		seeds = seeds[:3]
	}
	// Independent seeded outages: fan out over parsweep with the shared
	// core.State arena pool, then print rows in seed order.
	type row struct {
		darkDuring, darkAfter float64
		recovered             bool
	}
	rows := parsweep.MapWith(len(seeds), 0, mpArenas, func(i int, arena *msgnet.Arena[core.State]) row {
		a := core.New(5, 6)
		r := cst.NewRing[core.State](a, a.InitialLegitimate(), cst.Options[core.State]{
			Link:           msgnet.LinkParams{Delay: mpDelay, Jitter: mpJitter},
			Refresh:        mpRefresh,
			Seed:           seeds[i],
			CoherentCaches: true,
			Arena:          arena,
		})
		r.Net.Run(1)
		r.Net.SetLinkUp(1, 2, false)
		r.Net.SetLinkUp(2, 1, false)
		var during verify.Timeline
		r.Net.Observer = func(now msgnet.Time) {
			during.Record(float64(now), boolToCount(r.Census(core.HasToken) >= 1))
		}
		r.Net.Run(11)
		during.Close(float64(r.Net.Now()))

		r.Net.SetLinkUp(1, 2, true)
		r.Net.SetLinkUp(2, 1, true)
		r.Net.Observer = nil
		settle := r.Net.Now() + 5
		r.Net.Run(settle)
		var after verify.Timeline
		recovered := true
		r.Net.Observer = func(now msgnet.Time) {
			c := r.Census(core.HasToken)
			after.Record(float64(now), boolToCount(c >= 1))
			if c < 1 || c > 2 {
				recovered = false
			}
		}
		r.Net.Run(settle + 10)
		after.Close(float64(r.Net.Now()))
		return row{darkDuring: during.Duration(0), darkAfter: after.Duration(0), recovered: recovered}
	})
	for i, rw := range rows {
		tb.AddRow(seeds[i], rw.darkDuring, rw.darkAfter, rw.recovered)
	}
	printTable(tb)
	fmt.Println("\nA permanent duplex cut exceeds the paper's fault model (which requires")
	fmt.Println("eventual delivery): if the cut catches a handover mid-flight the ring")
	fmt.Println("can stay dark for the whole outage, because the privilege predicates")
	fmt.Println("read frozen caches. The moment the edge heals, self-stabilization")
	fmt.Println("restores the 1–2 regime with no intervention.")
}

func boolToCount(ok bool) int {
	if ok {
		return 1
	}
	return 0
}

func init() {
	register(270, "secondary", "Design choice of §3.1: naive (tra-only) vs designed secondary-token condition", runSecondaryCondition)
}

// runSecondaryCondition quantifies the discussion at the end of Section
// 3.1: with the naive condition "tra_i = 1", the secondary token goes
// extinct whenever the two tokens are co-located and announced; with the
// designed condition it exists at every instant, even through the
// message-passing transients. (The privileged census stays ≥1 under both —
// the primary token covers the naive condition's hole — but any
// application riding specifically on the secondary token, e.g. a
// second service role, would see outages.)
func runSecondaryCondition(cfg runConfig) {
	tb := newTable("condition", "0 secondaries", "1 secondary", "2 secondaries", "min")
	const horizon = 30.0
	for _, mode := range []string{"naive (tra only)", "designed (§3.1)"} {
		holder := core.HasSecondary
		if mode == "naive (tra only)" {
			holder = core.HasSecondaryNaive
		}
		a := core.New(5, 6)
		r := cst.NewRing[core.State](a, a.InitialLegitimate(), cst.Options[core.State]{
			Link:           msgnet.LinkParams{Delay: mpDelay, Jitter: mpJitter},
			Refresh:        mpRefresh,
			Hold:           0.02,
			Seed:           cfg.seed,
			CoherentCaches: true,
		})
		var tl verify.Timeline
		r.Net.Observer = func(now msgnet.Time) {
			tl.Record(float64(now), r.Census(holder))
		}
		r.Net.Run(msgnet.Time(horizon))
		tl.Close(float64(r.Net.Now()))
		tb.AddRow(mode, pct(tl.Fraction(0)), pct(tl.Fraction(1)), pct(tl.Fraction(2)), tl.MinCount())
	}
	printTable(tb)
	fmt.Println("\nThe naive condition loses the secondary token for a third of the time")
	fmt.Println("(every co-located-and-announced phase); the designed ⟨?.1⟩ ∨ ⟨1.?, 0.0⟩")
	fmt.Println("condition never loses it — it trades extinction for brief, harmless")
	fmt.Println("duplication while the ack is in flight (at-least-one semantics). This")
	fmt.Println("is the model-gap-tolerant design choice at the end of Section 3.1.")
}

func init() {
	register(280, "transforms", "Transform comparison: CST vs α-synchronizer — scheduling cannot close the gap", runTransforms)
}

// runTransforms compares the two execution transforms on both algorithms.
// The α-synchronizer simulates the synchronous daemon exactly (at a higher
// message cost), yet plain SSToken still shows zero-token instants under
// it: the model gap lives in the token predicates, not in the scheduling —
// which is why the paper fixes it with model-gap-tolerant conditions
// (SSRmin) on top of the cheap transform rather than with a stronger one.
func runTransforms(cfg runConfig) {
	const horizon = 30.0
	link := msgnet.LinkParams{Delay: mpDelay, Jitter: mpJitter}
	tb := newTable("algorithm", "transform", "0 holders", "min..max", "msgs/s", "advances/s")

	// SSToken under CST.
	{
		a := dijkstra.New(5, 6)
		r := cst.NewRing[dijkstra.State](a, a.InitialLegitimate(), cst.Options[dijkstra.State]{
			Link: link, Refresh: mpRefresh, Hold: 0.02, Seed: cfg.seed, CoherentCaches: true,
		})
		var tl verify.Timeline
		r.Net.Observer = func(now msgnet.Time) { tl.Record(float64(now), r.Census(dijkstra.HasToken)) }
		r.Net.Run(horizon)
		tl.Close(float64(r.Net.Now()))
		tb.AddRow("sstoken", "CST", pct(tl.Fraction(0)),
			fmt.Sprintf("%d..%d", tl.MinCount(), tl.MaxCount()),
			float64(r.Net.Stats().Sent)/horizon, float64(r.RuleExecutions())/horizon)
	}
	// SSToken under the α-synchronizer.
	{
		a := dijkstra.New(5, 6)
		r := synchro.NewRing[dijkstra.State](a, a.InitialLegitimate(), link, mpRefresh, cfg.seed)
		var tl verify.Timeline
		r.Net.Observer = func(now msgnet.Time) { tl.Record(float64(now), r.Census(dijkstra.HasToken)) }
		r.Net.Run(horizon)
		tl.Close(float64(r.Net.Now()))
		tb.AddRow("sstoken", "α-synchronizer", pct(tl.Fraction(0)),
			fmt.Sprintf("%d..%d", tl.MinCount(), tl.MaxCount()),
			float64(r.Net.Stats().Sent)/horizon, float64(r.RuleExecutions())/horizon)
	}
	// SSRmin under CST.
	{
		a := core.New(5, 6)
		r := cst.NewRing[core.State](a, a.InitialLegitimate(), cst.Options[core.State]{
			Link: link, Refresh: mpRefresh, Hold: 0.02, Seed: cfg.seed, CoherentCaches: true,
		})
		var tl verify.Timeline
		r.Net.Observer = func(now msgnet.Time) { tl.Record(float64(now), r.Census(core.HasToken)) }
		r.Net.Run(horizon)
		tl.Close(float64(r.Net.Now()))
		tb.AddRow("ssrmin", "CST", pct(tl.Fraction(0)),
			fmt.Sprintf("%d..%d", tl.MinCount(), tl.MaxCount()),
			float64(r.Net.Stats().Sent)/horizon, float64(r.RuleExecutions())/horizon/3)
	}
	// SSRmin under the α-synchronizer.
	{
		a := core.New(5, 6)
		r := synchro.NewRing[core.State](a, a.InitialLegitimate(), link, mpRefresh, cfg.seed)
		var tl verify.Timeline
		r.Net.Observer = func(now msgnet.Time) { tl.Record(float64(now), r.Census(core.HasToken)) }
		r.Net.Run(horizon)
		tl.Close(float64(r.Net.Now()))
		tb.AddRow("ssrmin", "α-synchronizer", pct(tl.Fraction(0)),
			fmt.Sprintf("%d..%d", tl.MinCount(), tl.MaxCount()),
			float64(r.Net.Stats().Sent)/horizon, float64(r.RuleExecutions())/horizon/3)
	}
	printTable(tb)
	fmt.Println("\nExact lockstep simulation does not save the plain token ring: its")
	fmt.Println("token predicate still evaluates to false everywhere between the")
	fmt.Println("release and the (observed) receipt. SSRmin's predicates keep 1–2")
	fmt.Println("holders under BOTH transforms — and the cheap CST suffices, which is")
	fmt.Println("precisely the paper's design argument (Sections 1.3 and 5).")
}

func init() {
	register(290, "worstcase", "Adversarial search for worst-case convergence starts (vs random, vs exact)", runWorstCase)
}

// runWorstCase hill-climbs over initial configurations (under the
// quiet-adversary daemon) to find slow-converging starts, compares them
// with the best of equally many random samples, and — for n ≤ 4 — with the
// exact worst case over ALL daemons from the model checker. The remaining
// gap to the exact value shows how much of the worst case is daemon
// strategy rather than starting configuration.
func runWorstCase(cfg runConfig) {
	tb := newTable("n", "random best", "search best", "exact (all daemons)", "budget 63n²+4")
	ns := []int{3, 4, 6, 8, 12}
	if cfg.quick {
		ns = []int{3, 4, 6}
	}
	for _, n := range ns {
		a := core.New(n, n+1)
		measure := func(init statemodel.Config[core.State]) int {
			d := daemon.NewRuleBiased(rand.New(rand.NewSource(7)),
				core.RuleReadySecondary, core.RuleRecvSecondary, core.RuleFixNoG)
			sim := statemodel.NewSimulator[core.State](a, d, init)
			steps, ok := sim.RunUntil(a.Legitimate, a.ConvergenceStepBound())
			if !ok {
				return a.ConvergenceStepBound() + 1
			}
			return steps
		}
		draw := func(rng *rand.Rand) statemodel.Config[core.State] {
			return randomConfig(a, rng)
		}
		mutate := func(rng *rand.Rand, s core.State) core.State {
			switch rng.Intn(3) {
			case 0:
				s.X = rng.Intn(a.K())
			case 1:
				s.RTS = !s.RTS
			default:
				s.TRA = !s.TRA
			}
			return s
		}
		evals := 2000
		if cfg.quick {
			evals = 600
		}
		rng := newRand(cfg.seed)
		randomBest := 0
		for i := 0; i < evals; i++ {
			if s := measure(draw(rng)); s > randomBest {
				randomBest = s
			}
		}
		res := adversary.Search[core.State](n, draw, mutate, measure,
			adversary.Options{Restarts: 8, Budget: evals/8 - 1, Seed: cfg.seed})
		exact := "-"
		if n <= 4 {
			c := check.New[core.State](a, 0)
			conv := c.CheckConvergence(a.Legitimate)
			exact = fmt.Sprintf("%d", conv.WorstSteps)
		}
		tb.AddRow(n, randomBest, res.Score, exact, a.ConvergenceStepBound())
	}
	printTable(tb)
	fmt.Println("\nHill-climbing on the start finds little beyond random sampling, and")
	fmt.Println("both sit well below the exact worst case (which maximizes over every")
	fmt.Println("daemon strategy, not just the quiet adversary): the hard part of the")
	fmt.Println("O(n²) worst case is the SCHEDULE, not the starting configuration.")
}

func init() {
	register(300, "herman", "Baseline: Herman's probabilistic token ring vs the deterministic rings", runHerman)
}

// runHerman situates SSRmin among token rings: Herman's 1990 ring uses a
// single bit per process and randomization (synchronous schedule, odd n),
// converging in expected Θ(n²) rounds; Dijkstra's SSToken and SSRmin are
// deterministic under the unfair daemon with K > n counter values. None of
// the two baselines offers mutual inclusion in the message-passing model —
// that is SSRmin's contribution.
func runHerman(cfg runConfig) {
	ns := []int{5, 9, 15, 25}
	trials := 300
	if cfg.quick {
		ns = ns[:3]
		trials = 100
	}
	tb := newTable("n", "mean rounds", "p90", "max", "4n²/27 (worst E[T])", "states/proc")
	var xs, ys []float64
	for _, n := range ns {
		samples := parsweep.Map(trials, 0, func(t int) float64 {
			r := herman.New(n, cfg.seed+int64(n*10_000+t))
			r.Randomize()
			steps, ok := r.RunUntilStable(int(1000 * herman.WorstCaseExpected(n)))
			if !ok {
				return -1
			}
			return float64(steps)
		})
		for _, s := range samples {
			if s < 0 {
				fmt.Printf("FAIL: n=%d did not converge\n", n)
				return
			}
		}
		sum := stats.Summarize(samples)
		tb.AddRow(n, sum.Mean, sum.P90, sum.Max, herman.WorstCaseExpected(n), 2)
		xs = append(xs, float64(n))
		ys = append(ys, sum.Mean+1)
	}
	printTable(tb)
	fmt.Printf("observed mean-rounds growth exponent: n^%.2f (theory: n²)\n", stats.GrowthExponent(xs, ys))
	fmt.Println("\nHerman's ring: 2 states/process and probability-1 convergence under")
	fmt.Println("a synchronous scheduler, vs SSRmin's 4K states and deterministic")
	fmt.Println("convergence under the unfair daemon. Like SSToken, Herman's single")
	fmt.Println("token gives no mutual inclusion once messages have latency.")
}

func init() {
	register(310, "fairness", "Fairness: the privilege shares monitoring work almost perfectly evenly", runFairness)
}

// runFairness measures how evenly the circulating privilege distributes
// critical-section time across stations — the energy story of the paper's
// camera application depends on it. Jain's index is 1.0 for perfectly
// equal shares.
func runFairness(cfg runConfig) {
	tb := newTable("n", "horizon (s)", "mean duty", "min duty", "max duty", "Jain index")
	horizon := msgnet.Time(120)
	if cfg.quick {
		horizon = 40
	}
	for _, n := range []int{4, 6, 10, 16} {
		a := core.New(n, n+1)
		r := cst.NewRing[core.State](a, a.InitialLegitimate(), cst.Options[core.State]{
			Link:           msgnet.LinkParams{Delay: mpDelay, Jitter: mpJitter},
			Refresh:        mpRefresh,
			Seed:           cfg.seed,
			CoherentCaches: true,
		})
		// Integrate per-node privileged time via the observer.
		busy := make([]float64, n)
		last := 0.0
		holders := map[int]bool{}
		r.Net.Observer = func(now msgnet.Time) {
			dt := float64(now) - last
			for h := range holders {
				busy[h] += dt
			}
			last = float64(now)
			for k := range holders {
				delete(holders, k)
			}
			for _, h := range r.Holders(core.HasToken) {
				holders[h] = true
			}
		}
		r.Net.Run(horizon)
		duties := make([]float64, n)
		minD, maxD, sum := 1.0, 0.0, 0.0
		for i := range duties {
			duties[i] = busy[i] / float64(horizon)
			if duties[i] < minD {
				minD = duties[i]
			}
			if duties[i] > maxD {
				maxD = duties[i]
			}
			sum += duties[i]
		}
		tb.AddRow(n, float64(horizon), sum/float64(n), minD, maxD, verify.JainFairness(duties))
	}
	printTable(tb)
	fmt.Println("\nJain's fairness index stays ≈1.00: every station gets an equal share")
	fmt.Println("of the monitoring duty (mean duty ≈ between 1/n and 2/n), which is")
	fmt.Println("what keeps every battery alive in the camera application.")
}

func init() {
	register(320, "tcp", "Real sockets: SSRmin as TCP services on loopback (wall clock)", runTCP)
}

// runTCP is the only wall-clock experiment: it starts an SSRmin ring as
// real TCP services on loopback, samples the census for a second, injects
// a live fault and samples again. Numbers vary with machine load; the
// *invariants* (census range, full circulation, recovery) must not.
func runTCP(cfg runConfig) {
	secs := 1.0
	if cfg.quick {
		secs = 0.5
	}
	ring, err := netring.StartLocalRing(5, 6, 10*time.Millisecond)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	defer ring.Stop()
	time.Sleep(100 * time.Millisecond)

	sample := func(d time.Duration) (min, max, samples int, visited map[int]bool) {
		min, max = 1<<30, -1
		visited = map[int]bool{}
		deadline := time.Now().Add(d)
		for time.Now().Before(deadline) {
			c := ring.Census()
			samples++
			if c < min {
				min = c
			}
			if c > max {
				max = c
			}
			for _, h := range ring.Holders() {
				visited[h] = true
			}
			time.Sleep(300 * time.Microsecond)
		}
		return
	}

	min1, max1, n1, visited := sample(time.Duration(secs * float64(time.Second)))
	fmt.Printf("clean phase:   %d samples, census [%d,%d], %d/%d nodes privileged at some point\n",
		n1, min1, max1, len(visited), 5)

	ring.Nodes[2].Inject(core.State{X: 4, RTS: true, TRA: true})
	time.Sleep(300 * time.Millisecond) // recovery window
	min2, max2, n2, _ := sample(time.Duration(secs * float64(time.Second) / 2))
	fmt.Printf("after a live fault + recovery: %d samples, census [%d,%d]\n", n2, min2, max2)
	fmt.Printf("total rule executions: %d\n", ring.RuleExecutions())

	if min1 >= 1 && max1 <= 2 && min2 >= 1 && max2 <= 2 && len(visited) == 5 {
		fmt.Println("\nPASS: mutual inclusion with graceful handover held on real sockets,")
		fmt.Println("through a live transient fault — the paper's guarantee, deployed.")
	} else {
		fmt.Println("\nWARN: census excursion observed (heavily loaded machine?)")
	}
}
