package main

import "testing"

// TestBatchExecutorTablesByteIdentical is the CI differential gate for
// the bit-sliced batch executor: for every sweep workload the table
// rendered from scalar-oracle step counts and the table rendered from
// bit-sliced step counts must be byte-identical.
func TestBatchExecutorTablesByteIdentical(t *testing.T) {
	ns := []int{8, 16}
	if !testing.Short() {
		ns = []int{8, 16, 32}
	}
	for _, a := range batchAlgos {
		scalarTab, batchTab, _, _ := renderBatchTables(a, ns, 2, 1)
		if scalarTab == "" {
			t.Fatalf("%s: empty table", a.name)
		}
		if scalarTab != batchTab {
			t.Errorf("%s: executors disagree\n--- scalar ---\n%s--- batch ---\n%s", a.name, scalarTab, batchTab)
		}
	}
}

// TestRegistrySanity checks the experiment index: unique ids, non-empty
// descriptions, runnable functions.
func TestRegistrySanity(t *testing.T) {
	if len(registry) < 18 {
		t.Fatalf("only %d experiments registered", len(registry))
	}
	seenID := map[string]bool{}
	seenOrder := map[int]bool{}
	for _, e := range registry {
		if e.id == "" || e.what == "" || e.run == nil {
			t.Errorf("incomplete experiment %+v", e)
		}
		if seenID[e.id] {
			t.Errorf("duplicate experiment id %q", e.id)
		}
		if seenOrder[e.order] {
			t.Errorf("duplicate order %d (id %q)", e.order, e.id)
		}
		seenID[e.id] = true
		seenOrder[e.order] = true
	}
	for _, want := range []string{
		"fig1", "fig2", "fig3", "fig4", "fig11", "fig12", "fig13",
		"closure", "deadlock", "lemma5", "theorem1", "theorem4",
		"convergence", "exactworst", "baseline", "handover", "overhead",
		"singlefault", "refresh", "delay", "scaling", "corruption",
		"lkcs", "outage", "secondary", "transforms", "batchconv",
	} {
		if !seenID[want] {
			t.Errorf("experiment %q missing from registry", want)
		}
	}
}

// TestQuickExperimentsRun smoke-runs the cheap experiments end to end in
// quick mode (they print to stdout; we only assert they do not panic).
func TestQuickExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke run skipped in short mode")
	}
	cfg := runConfig{quick: true, seed: 1}
	cheap := map[string]bool{
		"fig1": true, "fig2": true, "fig3": true, "fig4": true,
		"theorem1": true, "lkcs": true, "secondary": true,
	}
	for _, e := range registry {
		if !cheap[e.id] {
			continue
		}
		t.Run(e.id, func(t *testing.T) { e.run(cfg) })
	}
}
