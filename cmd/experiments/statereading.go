package main

import (
	"fmt"
	"os"

	"ssrmin/internal/check"
	"ssrmin/internal/core"
	"ssrmin/internal/daemon"
	"ssrmin/internal/statemodel"
	"ssrmin/internal/trace"
)

func init() {
	register(10, "fig1", "Figure 1: movement of the two tokens (P/S) on five processes", runFig1)
	register(20, "fig3", "Figure 3: possible rules for each ⟨rts.tra⟩ value", runFig3)
	register(30, "fig4", "Figure 4: execution example of SSRmin with five processes", runFig4)
	register(40, "closure", "Lemma 1: closure of Λ (exhaustive)", runClosure)
	register(50, "deadlock", "Lemmas 3–4: no deadlock (exhaustive + sampled)", runDeadlock)
	register(60, "lemma5", "Lemma 5: longest execution without Rules 2/4 is ≤ 3n", runLemma5)
	register(70, "theorem1", "Theorem 1: 1–2 privileged processes in Λ; 4K states/process", runTheorem1)
}

// figure4Initial reproduces the starting configuration of Figures 1 and 4:
// x = 3 everywhere, both tokens at P0.
func figure4Initial(a *core.Algorithm) statemodel.Config[core.State] {
	cfg := make(statemodel.Config[core.State], a.N())
	for i := range cfg {
		cfg[i] = core.State{X: 3}
	}
	cfg[0].TRA = true
	return cfg
}

func runFig1(cfg runConfig) {
	a := core.New(5, 6)
	sim := statemodel.NewSimulator[core.State](a, daemon.NewCentralLowest(), figure4Initial(a))
	var rec trace.Recorder[core.State]
	rec.Attach(sim)
	sim.Run(15)
	if err := trace.RenderTokens(os.Stdout, &rec); err != nil {
		fmt.Println("error:", err)
	}
	fmt.Println("\nP = primary token, S = secondary token; the two tokens advance")
	fmt.Println("like an inchworm: S steps ahead, then P catches up.")
}

func runFig3(cfg runConfig) {
	a := core.New(3, 4)
	type key struct{ rts, tra bool }
	possible := map[key]map[int]bool{}
	for _, self := range a.AllStates() {
		for _, pred := range a.AllStates() {
			for _, succ := range a.AllStates() {
				for _, i := range []int{0, 1} {
					v := statemodel.View[core.State]{I: i, N: 3, Self: self, Pred: pred, Succ: succ}
					if r := a.EnabledRule(v); r != 0 {
						k := key{self.RTS, self.TRA}
						if possible[k] == nil {
							possible[k] = map[int]bool{}
						}
						possible[k][r] = true
					}
				}
			}
		}
	}
	tb := newTable("⟨rts.tra⟩", "possible rules")
	for _, k := range []key{{false, false}, {false, true}, {true, false}, {true, true}} {
		var rules []string
		for r := 1; r <= 5; r++ {
			if possible[k][r] {
				rules = append(rules, fmt.Sprintf("Rule %d", r))
			}
		}
		tb.AddRow(fmt.Sprintf("⟨%d.%d⟩", b2i(k.rts), b2i(k.tra)), joinComma(rules))
	}
	printTable(tb)
	fmt.Println("\nMatches Figure 3 of the paper: ⟨0.0⟩ → {1,3}, ⟨0.1⟩ → {1,5},")
	fmt.Println("⟨1.0⟩ → {2,3,4,5}, ⟨1.1⟩ → {1,3,5}.")
}

func runFig4(cfg runConfig) {
	a := core.New(5, 6)
	sim := statemodel.NewSimulator[core.State](a, daemon.NewCentralLowest(), figure4Initial(a))
	var rec trace.Recorder[core.State]
	rec.Attach(sim)
	sim.Run(15)
	if err := trace.RenderSSRmin(os.Stdout, &rec); err != nil {
		fmt.Println("error:", err)
	}
	fmt.Println("\nCell format: x.rts.tra + token letters + /rule-to-execute,")
	fmt.Println("identical to Figure 4 of the paper (steps 1–16).")
}

func runClosure(cfg runConfig) {
	tb := newTable("instance", "|Γ|", "|Λ|", "max enabled in Λ", "closure")
	for _, in := range []struct{ n, k int }{{3, 4}, {3, 5}, {4, 5}} {
		if cfg.quick && in.n > 3 {
			continue
		}
		a := core.New(in.n, in.k)
		c := check.New[core.State](a, 0)
		rep := c.CheckClosure(a.Legitimate)
		verdict := "PASS"
		if rep.Counterexample != nil {
			verdict = fmt.Sprintf("FAIL at %v", rep.Counterexample)
		}
		tb.AddRow(a.Name(), c.NumConfigs(), rep.Legitimate, rep.MaxEnabled, verdict)
	}
	printTable(tb)
	fmt.Println("\nEvery distributed-daemon successor of a legitimate configuration is")
	fmt.Println("legitimate, and exactly one process is enabled (the daemon has no choice).")
}

func runDeadlock(cfg runConfig) {
	a := core.New(3, 4)
	c := check.New[core.State](a, 0)
	if cex, ok := c.CheckNoDeadlock(); !ok {
		fmt.Printf("FAIL: deadlock at %v\n", cex)
		return
	}
	fmt.Printf("exhaustive n=3 K=4: all %d configurations have an enabled process\n", c.NumConfigs())

	trials := 200_000
	if cfg.quick {
		trials = 20_000
	}
	inj := newRand(cfg.seed)
	for _, in := range []struct{ n, k int }{{8, 9}, {16, 17}, {32, 37}} {
		b := core.New(in.n, in.k)
		for t := 0; t < trials/10; t++ {
			rc := randomConfig(b, inj)
			if len(statemodel.Enabled[core.State](b, rc)) == 0 {
				fmt.Printf("FAIL: sampled deadlock at n=%d: %v\n", in.n, rc)
				return
			}
		}
		fmt.Printf("sampled   n=%d K=%d: %d random configurations, all live\n", in.n, in.k, trials/10)
	}
}

func runLemma5(cfg runConfig) {
	// Exact values via the model checker for small instances.
	tb := newTable("instance", "longest {1,3,5}-execution", "bound 3n", "method")
	for _, in := range []struct{ n, k int }{{3, 4}, {4, 5}} {
		if cfg.quick && in.n > 3 {
			continue
		}
		a := core.New(in.n, in.k)
		c := check.New[core.State](a, 0)
		steps, _, ok := c.LongestRestricted(map[int]bool{1: true, 3: true, 5: true})
		if !ok {
			fmt.Println("FAIL: infinite quiet execution")
			return
		}
		tb.AddRow(a.Name(), steps, 3*in.n, "exhaustive")
	}
	// Greedy adversarial simulation for larger rings.
	rng := newRand(cfg.seed)
	trials := 3000
	if cfg.quick {
		trials = 300
	}
	for _, in := range []struct{ n, k int }{{8, 9}, {16, 17}, {32, 37}} {
		a := core.New(in.n, in.k)
		longest := 0
		for t := 0; t < trials; t++ {
			c := randomConfig(a, rng)
			steps := 0
			for {
				var quiet []statemodel.Move
				for _, m := range statemodel.Enabled[core.State](a, c) {
					if m.Rule != core.RuleSendPrimary && m.Rule != core.RuleFixG {
						quiet = append(quiet, m)
					}
				}
				if len(quiet) == 0 {
					break
				}
				c = statemodel.Apply[core.State](a, c, quiet)
				steps++
			}
			if steps > longest {
				longest = steps
			}
		}
		tb.AddRow(a.Name(), longest, 3*in.n, fmt.Sprintf("greedy ×%d", trials))
	}
	printTable(tb)
	fmt.Println("\nNo execution avoiding the Dijkstra moves (Rules 2/4) exceeds 3n steps,")
	fmt.Println("as Lemma 5 proves; observed maxima are far below the bound.")
}

func runTheorem1(cfg runConfig) {
	tb := newTable("instance", "|Λ|", "primary", "secondary", "privileged", "states/process")
	for _, in := range []struct{ n, k int }{{3, 4}, {5, 6}, {8, 11}} {
		a := core.New(in.n, in.k)
		minP, maxP := 1<<30, -1
		okTokens := true
		for _, c := range a.LegitimateConfigs() {
			p, s, t := len(a.PrimaryHolders(c)), len(a.SecondaryHolders(c)), len(a.TokenHolders(c))
			if p != 1 || s != 1 {
				okTokens = false
			}
			if t < minP {
				minP = t
			}
			if t > maxP {
				maxP = t
			}
		}
		verdictP, verdictS := "1", "1"
		if !okTokens {
			verdictP, verdictS = "FAIL", "FAIL"
		}
		tb.AddRow(a.Name(), 3*in.n*in.k, verdictP, verdictS,
			fmt.Sprintf("%d..%d", minP, maxP), 4*in.k)
	}
	printTable(tb)
	fmt.Println("\nExactly one primary and one secondary token exist in every legitimate")
	fmt.Println("configuration (Lemma 2); 1–2 processes are privileged (Theorem 1);")
	fmt.Println("the state space per process is 4K as claimed.")
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

func joinComma(xs []string) string {
	out := ""
	for i, x := range xs {
		if i > 0 {
			out += ", "
		}
		out += x
	}
	return out
}

func init() {
	register(75, "lambdadot", "The legitimate set Λ as a Graphviz cycle (Lemma 1's closed orbit)", runLambdaDot)
}

// runLambdaDot prints the transition graph restricted to Λ for the n=3,
// K=4 instance as Graphviz DOT: 36 nodes, 36 edges, one directed cycle —
// the mechanical picture of Lemma 1 (closure, part (a)) and of its proof's
// part (b) (every legitimate configuration reachable from γ0).
func runLambdaDot(cfg runConfig) {
	a := core.New(3, 4)
	c := check.New[core.State](a, 0)
	nodes, edges, err := c.ExportDOT(os.Stdout, "lambda-n3", a.Legitimate)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("\n%d nodes, %d edges — a single directed cycle (pipe into `dot -Tsvg`).\n", nodes, edges)
}
