package main

import (
	"fmt"
	"math/rand"
	"os"

	"ssrmin/internal/core"
	"ssrmin/internal/cst"
	"ssrmin/internal/dijkstra"
	"ssrmin/internal/fault"
	"ssrmin/internal/msgnet"
	"ssrmin/internal/parsweep"
	"ssrmin/internal/statemodel"
	"ssrmin/internal/trace"
	"ssrmin/internal/verify"
)

func init() {
	register(100, "fig2", "Figure 2: the rts/tra handshake between P_i and P_{i+1}", runFig2)
	register(110, "fig11", "Figure 11: token extinction of SSToken in the message-passing model", runFig11)
	register(120, "fig12", "Figure 12: two independent SSToken instances still go tokenless", runFig12)
	register(130, "fig13", "Figure 13 / Theorem 3: SSRmin keeps 1–2 holders through every transient", runFig13)
	register(140, "theorem4", "Theorem 4: stabilization from arbitrary states, caches and loss", runTheorem4)
	register(150, "handover", "Graceful handover: coverage-gap comparison SSRmin vs SSToken", runHandover)
	register(160, "overhead", "Message and rule overhead of the graceful handover", runOverhead)
}

const (
	mpDelay   = 0.01
	mpJitter  = 0.002
	mpRefresh = 0.05
)

// mpArenas hands each sweep worker a reusable event arena for the
// core.State rings; consecutive experiments recycle the same arenas
// (reset-not-reallocate), shared by every parallel sweep in this
// command that simulates SSRmin rings.
var mpArenas = parsweep.NewPool(msgnet.NewArena[core.State])

func runFig2(cfg runConfig) {
	// Trace one full handover in the message-passing model, logging every
	// rule execution with the census before/after — the handshake of
	// Figure 2 with the transient periods of Figure 13.
	a := core.New(5, 6)
	r := cst.NewRing[core.State](a, a.InitialLegitimate(), cst.Options[core.State]{
		Link:           msgnet.LinkParams{Delay: mpDelay},
		Refresh:        mpRefresh,
		Seed:           cfg.seed,
		CoherentCaches: true,
	})
	fmt.Println("time(s)  node  rule                 census after")
	events := 0
	for i, nd := range r.Nodes {
		id := i
		nd.OnExecute = func(now msgnet.Time, rule int) {
			if events >= 9 {
				return
			}
			events++
			fmt.Printf("%7.3f  P%d    %-20s %d holder(s) %v\n",
				float64(now), id, core.RuleName(rule), r.Census(core.HasToken), r.Holders(core.HasToken))
		}
	}
	st := trace.NewSpaceTime(a.N())
	trace.Attach(st, r.Net)
	for i, nd := range r.Nodes {
		id := i
		prev := nd.OnExecute
		nd.OnExecute = func(now msgnet.Time, rule int) {
			st.Annotate(now, id, fmt.Sprintf("R%d", rule))
			if prev != nil {
				prev(now, rule)
			}
		}
	}
	st.Limit = 60
	r.Net.Run(3)
	fmt.Println("\nspace-time diagram of the first events (s→k send, r←k receive,")
	fmt.Println("T refresh timer, Rk rule execution):")
	if err := st.Render(os.Stdout); err != nil {
		fmt.Println("error:", err)
	}
	fmt.Println("\nEach position advance is the three-step handshake of Figure 2:")
	fmt.Println("R1 (ready-to-send) at P_i, R3 (receive ack) at P_{i+1}, R2 (send")
	fmt.Println("primary) at P_i — and the census never leaves {1, 2}.")
}

func runFig11(cfg runConfig) {
	tb := newTable("dwell (s)", "0 holders", "1 holder", "2+ holders", "min census")
	for _, hold := range []msgnet.Time{0, 0.02, 0.05} {
		a := dijkstra.New(5, 6)
		r := cst.NewRing[dijkstra.State](a, a.InitialLegitimate(), cst.Options[dijkstra.State]{
			Link:           msgnet.LinkParams{Delay: mpDelay, Jitter: mpJitter},
			Refresh:        mpRefresh,
			Hold:           hold,
			Seed:           cfg.seed,
			CoherentCaches: true,
		})
		var tl verify.Timeline
		r.Net.Observer = func(now msgnet.Time) {
			tl.Record(float64(now), r.Census(dijkstra.HasToken))
		}
		r.Net.Run(30)
		tl.Close(float64(r.Net.Now()))
		two := 0.0
		for _, c := range tl.Counts() {
			if c >= 2 {
				two += tl.Fraction(c)
			}
		}
		tb.AddRow(float64(hold), pct(tl.Fraction(0)), pct(tl.Fraction(1)), pct(two), tl.MinCount())
	}
	printTable(tb)
	fmt.Println("\nPlain SSToken under CST: whenever the (unique) token is in flight")
	fmt.Println("between the release at P_i and the receipt at P_{i+1}, NO node is")
	fmt.Println("privileged — mutual inclusion fails in the message-passing model,")
	fmt.Println("exactly the defect Figure 11 illustrates.")
}

func runFig12(cfg runConfig) {
	p := dijkstra.NewPair(5, 6)
	init := make(statemodel.Config[dijkstra.PairState], 5)
	for i := range init {
		if i < 2 {
			init[i] = dijkstra.PairState{A: 0, B: 1}
		} else {
			init[i] = dijkstra.PairState{A: 0, B: 0}
		}
	}
	holderEither := func(v statemodel.View[dijkstra.PairState]) bool {
		va := statemodel.View[dijkstra.State]{I: v.I, N: v.N, Self: dijkstra.State{X: v.Self.A}, Pred: dijkstra.State{X: v.Pred.A}, Succ: dijkstra.State{X: v.Succ.A}}
		vb := statemodel.View[dijkstra.State]{I: v.I, N: v.N, Self: dijkstra.State{X: v.Self.B}, Pred: dijkstra.State{X: v.Pred.B}, Succ: dijkstra.State{X: v.Succ.B}}
		return dijkstra.Guard(va) || dijkstra.Guard(vb)
	}
	tb := newTable("seed", "0 holders", "1 holder", "2 holders", "min census")
	seeds := []int64{1, 2, 3, 4, 5}
	if cfg.quick {
		seeds = seeds[:2]
	}
	// Each seed is an independent simulation, so the sweep fans out over
	// parsweep with one reusable event arena per worker; rows come back
	// in seed order, so the table is identical to the sequential run.
	pool := parsweep.NewPool(msgnet.NewArena[dijkstra.PairState])
	type row struct {
		tl verify.Timeline
	}
	rows := parsweep.MapWith(len(seeds), 0, pool, func(i int, arena *msgnet.Arena[dijkstra.PairState]) row {
		r := cst.NewRing[dijkstra.PairState](p, init, cst.Options[dijkstra.PairState]{
			Link:           msgnet.LinkParams{Delay: mpDelay, Jitter: 0.005},
			Refresh:        mpRefresh,
			Hold:           0.02,
			Seed:           seeds[i],
			CoherentCaches: true,
			Arena:          arena,
		})
		var tl verify.Timeline
		r.Net.Observer = func(now msgnet.Time) {
			tl.Record(float64(now), r.Census(holderEither))
		}
		r.Net.Run(30)
		tl.Close(float64(r.Net.Now()))
		return row{tl: tl}
	})
	for i, rw := range rows {
		tl := rw.tl
		tb.AddRow(seeds[i], pct(tl.Fraction(0)), pct(tl.Fraction(1)), pct(tl.Fraction(2)), tl.MinCount())
	}
	printTable(tb)
	fmt.Println("\nEven two concurrent, independent token rings reach instants where both")
	fmt.Println("tokens are in flight simultaneously (census 0) — uncoordinated")
	fmt.Println("redundancy does not give mutual inclusion (Figure 12).")
}

func runFig13(cfg runConfig) {
	tb := newTable("seed", "loss", "dwell", "0 holders", "1 holder", "2 holders", "violations")
	seeds := []int64{1, 2, 3, 4, 5, 6}
	if cfg.quick {
		seeds = seeds[:3]
	}
	// Flatten the loss × seed grid into independent trials and fan out
	// over parsweep with worker-scoped arenas; results return in trial
	// order, so the printed table matches the sequential nesting.
	type trial struct {
		loss float64
		seed int64
	}
	var trials []trial
	for _, loss := range []float64{0, 0.1} {
		for _, seed := range seeds {
			trials = append(trials, trial{loss: loss, seed: seed})
		}
	}
	type row struct {
		tl         verify.Timeline
		violations int
	}
	rows := parsweep.MapWith(len(trials), 0, mpArenas, func(i int, arena *msgnet.Arena[core.State]) row {
		tr := trials[i]
		a := core.New(5, 6)
		r := cst.NewRing[core.State](a, a.InitialLegitimate(), cst.Options[core.State]{
			Link:           msgnet.LinkParams{Delay: mpDelay, Jitter: mpJitter, LossProb: tr.loss},
			Refresh:        mpRefresh,
			Hold:           0.02,
			Seed:           tr.seed,
			CoherentCaches: true,
			Arena:          arena,
		})
		var tl verify.Timeline
		mon := verify.Monitor{Bounds: verify.SSRminBounds}
		r.Net.Observer = func(now msgnet.Time) {
			c := r.Census(core.HasToken)
			tl.Record(float64(now), c)
			mon.Observe(float64(now), c)
		}
		r.Net.Run(30)
		tl.Close(float64(r.Net.Now()))
		return row{tl: tl, violations: len(mon.Violations)}
	})
	for i, rw := range rows {
		tr, tl := trials[i], rw.tl
		tb.AddRow(tr.seed, tr.loss, 0.02, pct(tl.Fraction(0)), pct(tl.Fraction(1)), pct(tl.Fraction(2)), rw.violations)
	}
	printTable(tb)
	fmt.Println("\nSSRmin through the same transform: the census NEVER leaves {1, 2} —")
	fmt.Println("zero violations at every observed instant, with and without message")
	fmt.Println("loss. This is the model gap tolerance of Theorem 3 (Figure 13).")
}

func runTheorem4(cfg runConfig) {
	trials := 10
	if cfg.quick {
		trials = 4
	}
	tb := newTable("trial", "loss", "stabilized at (s)", "census after", "coherent")
	inj := fault.NewInjector(cfg.seed)
	for trial := 0; trial < trials; trial++ {
		loss := 0.1
		a := core.New(6, 8)
		init := make(statemodel.Config[core.State], 6)
		for i := range init {
			init[i] = core.State{X: inj.Rand().Intn(8), RTS: inj.Rand().Intn(2) == 1, TRA: inj.Rand().Intn(2) == 1}
		}
		r := cst.NewRing[core.State](a, init, cst.Options[core.State]{
			Link:           msgnet.LinkParams{Delay: mpDelay, Jitter: mpJitter, LossProb: loss},
			Refresh:        mpRefresh,
			Seed:           cfg.seed + int64(trial),
			CoherentCaches: false,
			RandomState: func(rng *rand.Rand) core.State {
				return core.State{X: rng.Intn(8), RTS: rng.Intn(2) == 1, TRA: rng.Intn(2) == 1}
			},
		})
		// Track the last instant at which the invariant was violated.
		lastBad := -1.0
		r.Net.Observer = func(now msgnet.Time) {
			c := r.Census(core.HasToken)
			if c < 1 || c > 2 {
				lastBad = float64(now)
			}
		}
		const horizon = 120
		r.Net.Run(horizon)
		tb.AddRow(trial, loss, fmt.Sprintf("%.2f", lastBad), r.Census(core.HasToken), r.Coherent())
	}
	printTable(tb)
	fmt.Println("\n\"stabilized at\" is the last instant the census left [1,2]; -1 means")
	fmt.Println("it never did. From arbitrary states, arbitrary caches and 10% message")
	fmt.Println("loss, every run settles into the 1–2 holder regime and stays there")
	fmt.Println("(Theorem 4 / Lemma 9).")
}

func runHandover(cfg runConfig) {
	// Coverage gaps: the application-level consequence. A station is
	// active while privileged; measure total un-covered time.
	tb := newTable("algorithm", "dwell (s)", "gaps", "total gap (s)", "longest gap (s)", "availability")
	const horizon = 60.0
	{
		a := dijkstra.New(5, 6)
		r := cst.NewRing[dijkstra.State](a, a.InitialLegitimate(), cst.Options[dijkstra.State]{
			Link:           msgnet.LinkParams{Delay: mpDelay, Jitter: mpJitter},
			Refresh:        mpRefresh,
			Hold:           0.02,
			Seed:           cfg.seed,
			CoherentCaches: true,
		})
		var tl verify.Timeline
		r.Net.Observer = func(now msgnet.Time) {
			tl.Record(float64(now), r.Census(dijkstra.HasToken))
		}
		r.Net.Run(msgnet.Time(horizon))
		tl.Close(float64(r.Net.Now()))
		gaps := tl.Intervals(0)
		longest := 0.0
		for _, g := range gaps {
			if g.Len() > longest {
				longest = g.Len()
			}
		}
		tb.AddRow("sstoken", 0.02, len(gaps), tl.Duration(0), longest, pct(verify.Availability(&tl)))
	}
	{
		a, r := ssrminMPRingSimple(5, 6, cfg.seed, 0.02)
		_ = a
		var tl verify.Timeline
		r.Net.Observer = func(now msgnet.Time) {
			tl.Record(float64(now), r.Census(core.HasToken))
		}
		r.Net.Run(msgnet.Time(horizon))
		tl.Close(float64(r.Net.Now()))
		gaps := tl.Intervals(0)
		longest := 0.0
		for _, g := range gaps {
			if g.Len() > longest {
				longest = g.Len()
			}
		}
		tb.AddRow("ssrmin", 0.02, len(gaps), tl.Duration(0), longest, pct(verify.Availability(&tl)))
	}
	printTable(tb)
	fmt.Println("\nThe handover is graceful for SSRmin: zero coverage gaps over the whole")
	fmt.Println("run, versus hundreds of gaps (one per hop) for the naive token ring.")
}

func ssrminMPRingSimple(n, k int, seed int64, hold msgnet.Time) (*core.Algorithm, *cst.Ring[core.State]) {
	a := core.New(n, k)
	r := cst.NewRing[core.State](a, a.InitialLegitimate(), cst.Options[core.State]{
		Link:           msgnet.LinkParams{Delay: mpDelay, Jitter: mpJitter},
		Refresh:        mpRefresh,
		Hold:           hold,
		Seed:           seed,
		CoherentCaches: true,
	})
	return a, r
}

func runOverhead(cfg runConfig) {
	// Cost of the graceful handover: rule executions and messages per
	// position advance, SSRmin vs SSToken, across refresh periods.
	tb := newTable("algorithm", "refresh (s)", "advances", "rules/advance", "msgs/advance")
	const horizon = 60.0
	for _, refresh := range []msgnet.Time{0.02, 0.05, 0.1} {
		{
			a := dijkstra.New(5, 6)
			r := cst.NewRing[dijkstra.State](a, a.InitialLegitimate(), cst.Options[dijkstra.State]{
				Link:           msgnet.LinkParams{Delay: mpDelay, Jitter: mpJitter},
				Refresh:        refresh,
				Seed:           cfg.seed,
				CoherentCaches: true,
			})
			r.Net.Run(msgnet.Time(horizon))
			adv := r.RuleExecutions() // every SSToken rule is one advance
			if adv > 0 {
				tb.AddRow("sstoken", float64(refresh), adv,
					float64(r.RuleExecutions())/float64(adv),
					float64(r.Net.Stats().Sent)/float64(adv))
			}
		}
		{
			a := core.New(5, 6)
			r := cst.NewRing[core.State](a, a.InitialLegitimate(), cst.Options[core.State]{
				Link:           msgnet.LinkParams{Delay: mpDelay, Jitter: mpJitter},
				Refresh:        refresh,
				Seed:           cfg.seed,
				CoherentCaches: true,
			})
			advances := 0
			for _, nd := range r.Nodes {
				nd.OnExecute = func(now msgnet.Time, rule int) {
					if rule == core.RuleSendPrimary {
						advances++
					}
				}
			}
			r.Net.Run(msgnet.Time(horizon))
			if advances > 0 {
				tb.AddRow("ssrmin", float64(refresh), advances,
					float64(r.RuleExecutions())/float64(advances),
					float64(r.Net.Stats().Sent)/float64(advances))
			}
		}
	}
	printTable(tb)
	fmt.Println("\nGraceful handover costs ≈3 rule executions per position advance")
	fmt.Println("(Rules 1, 3, 2) instead of SSToken's 1, plus the corresponding state")
	fmt.Println("announcements — the price of never being uncovered.")
}

func pct(f float64) string { return fmt.Sprintf("%.2f%%", 100*f) }
