package main

import (
	"fmt"
	"math/rand"

	"ssrmin/internal/check"
	"ssrmin/internal/cliconf"
	"ssrmin/internal/core"
	"ssrmin/internal/daemon"
	"ssrmin/internal/dijkstra"
	"ssrmin/internal/parsweep"
	"ssrmin/internal/statemodel"
	"ssrmin/internal/stats"
	"ssrmin/internal/verify"
)

func init() {
	register(80, "convergence", "Theorem 2 / Lemmas 7–8: O(n²) convergence under the unfair distributed daemon", runConvergence)
	register(85, "exactworst", "Exact worst-case stabilization times (exhaustive, small n)", runExactWorst)
	register(90, "baseline", "SSToken baseline: convergence within 3n(n−1)/2", runBaseline)
}

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func randomConfig(a *core.Algorithm, rng *rand.Rand) statemodel.Config[core.State] {
	c := make(statemodel.Config[core.State], a.N())
	for i := range c {
		c[i] = core.State{X: rng.Intn(a.K()), RTS: rng.Intn(2) == 1, TRA: rng.Intn(2) == 1}
	}
	return c
}

// convergenceSteps runs one convergence trial and returns the step count.
func convergenceSteps(a *core.Algorithm, d statemodel.Daemon, init statemodel.Config[core.State]) (int, bool) {
	sim := statemodel.NewSimulator[core.State](a, d, init)
	return sim.RunUntil(a.Legitimate, a.ConvergenceStepBound())
}

func runConvergence(cfg runConfig) {
	ns := []int{4, 6, 8, 12, 16, 24, 32}
	trials := 300
	if cfg.quick {
		ns = []int{4, 6, 8, 12}
		trials = 60
	}

	// The sweep covers every scheduler in the shared registry (the same
	// list the -daemon CLI flags accept), at inclusion probability 0.5.
	type daemonMaker struct {
		name string
		make func(seed int64) statemodel.Daemon
	}
	var daemons []daemonMaker
	for _, spec := range cliconf.Daemons() {
		spec := spec
		daemons = append(daemons, daemonMaker{spec.Label,
			func(s int64) statemodel.Daemon { return spec.New(s, 0.5) }})
	}

	for _, dm := range daemons {
		tb := newTable("n", "K", "mean steps", "p90", "max", "budget 63n²+4")
		var xs, ys []float64
		for _, n := range ns {
			k := n + 1
			a := core.New(n, k)
			// Each trial derives its own RNGs from its index, so the sweep
			// parallelizes without losing reproducibility.
			samples := parsweep.Map(trials, 0, func(t int) float64 {
				init := randomConfig(a, newRand(cfg.seed+int64(n)*100_000+int64(t)))
				steps, ok := convergenceSteps(a, dm.make(cfg.seed+int64(t)), init)
				if !ok {
					return -1
				}
				return float64(steps)
			})
			for _, s := range samples {
				if s < 0 {
					fmt.Printf("FAIL: %s n=%d did not converge within %d steps\n", dm.name, n, a.ConvergenceStepBound())
					return
				}
			}
			s := stats.Summarize(samples)
			tb.AddRow(n, k, s.Mean, s.P90, s.Max, a.ConvergenceStepBound())
			xs = append(xs, float64(n))
			ys = append(ys, s.Max)
		}
		exp := stats.GrowthExponent(xs, ys)
		fmt.Printf("--- daemon: %s (%d trials per n, random initial configurations) ---\n", dm.name, trials)
		printTable(tb)
		fmt.Printf("observed max-steps growth exponent: n^%.2f (Theorem 2 bound: n^2)\n\n", exp)
	}
}

func runExactWorst(cfg runConfig) {
	tb := newTable("instance", "|Γ∖Λ|", "exact worst-case steps", "O(n²) budget")
	instances := []struct{ n, k int }{{3, 4}, {4, 5}}
	if cfg.quick {
		instances = instances[:1]
	}
	for _, in := range instances {
		a := core.New(in.n, in.k)
		c := check.New[core.State](a, 0)
		conv := c.CheckConvergence(a.Legitimate)
		if !conv.Converges {
			fmt.Printf("FAIL: cycle at %v\n", conv.Cycle)
			return
		}
		tb.AddRow(a.Name(), conv.Illegitimate, conv.WorstSteps, a.ConvergenceStepBound())
	}
	printTable(tb)
	fmt.Println("\nThe exact worst case (longest path to Λ over ALL daemon strategies,")
	fmt.Println("computed exhaustively) is far below the analytical O(n²) budget:")
	fmt.Println("16 steps for n=3, 43 for n=4 — consistent with quadratic growth.")
}

func runBaseline(cfg runConfig) {
	ns := []int{4, 8, 16, 32, 64}
	trials := 500
	if cfg.quick {
		ns = []int{4, 8, 16}
		trials = 100
	}
	tb := newTable("n", "K", "mean steps", "max", "bound 3n(n−1)/2")
	var xs, ys []float64
	for _, n := range ns {
		k := n + 1
		a := dijkstra.New(n, k)
		rng := newRand(cfg.seed + int64(n))
		var samples []float64
		for t := 0; t < trials; t++ {
			c := make(statemodel.Config[dijkstra.State], n)
			for i := range c {
				c[i] = dijkstra.State{X: rng.Intn(k)}
			}
			sim := statemodel.NewSimulator[dijkstra.State](a, daemon.NewRandomSubset(newRand(cfg.seed+int64(t)), 0.5), c)
			steps, ok := sim.RunUntil(a.SingleToken, a.ConvergenceBound()+1)
			if !ok {
				fmt.Printf("FAIL: SSToken n=%d exceeded its bound\n", n)
				return
			}
			samples = append(samples, float64(steps))
		}
		s := stats.Summarize(samples)
		tb.AddRow(n, k, s.Mean, s.Max, a.ConvergenceBound())
		xs = append(xs, float64(n))
		ys = append(ys, s.Max+1) // +1 keeps log defined when max = 0
	}
	printTable(tb)
	fmt.Printf("observed max-steps growth exponent: n^%.2f\n", stats.GrowthExponent(xs, ys))
	fmt.Println("\nSSToken (mutual exclusion only) converges faster than SSRmin, but it")
	fmt.Println("offers no mutual inclusion in the message-passing model (see fig11).")
}

func init() {
	register(95, "rounds", "Round complexity: convergence measured in rounds as well as steps", runRounds)
}

// runRounds reports convergence time in *rounds* — the normalized time
// unit of the self-stabilization literature (a round ends when every
// process enabled at its start has moved or been disabled). The paper
// proves O(n²) steps; the observed round counts grow roughly linearly,
// matching the intuition that each of the O(n) "laps" of the Dijkstra
// token costs O(n) steps but only O(1)–O(n) rounds.
func runRounds(cfg runConfig) {
	ns := []int{4, 6, 8, 12, 16, 24}
	trials := 200
	if cfg.quick {
		ns = ns[:4]
		trials = 50
	}
	tb := newTable("n", "mean steps", "mean rounds", "max rounds", "steps/round")
	var xs, ys []float64
	for _, n := range ns {
		a := core.New(n, n+1)
		type res struct{ steps, rounds int }
		results := parsweep.Map(trials, 0, func(t int) res {
			init := randomConfig(a, newRand(cfg.seed+int64(n)*77_000+int64(t)))
			d := daemon.NewRandomSubset(newRand(cfg.seed+int64(t)), 0.5)
			sim := statemodel.NewSimulator[core.State](a, d, init)
			steps, rounds, ok := statemodel.ConvergenceRounds[core.State](sim, a.Legitimate, a.ConvergenceStepBound())
			if !ok {
				return res{-1, -1}
			}
			return res{steps, rounds}
		})
		var stepsS, roundsS []float64
		maxR := 0
		for _, r := range results {
			if r.steps < 0 {
				fmt.Printf("FAIL: n=%d no convergence\n", n)
				return
			}
			stepsS = append(stepsS, float64(r.steps))
			roundsS = append(roundsS, float64(r.rounds))
			if r.rounds > maxR {
				maxR = r.rounds
			}
		}
		ms, mr := stats.Summarize(stepsS).Mean, stats.Summarize(roundsS).Mean
		ratio := 0.0
		if mr > 0 {
			ratio = ms / mr
		}
		tb.AddRow(n, ms, mr, maxR, ratio)
		xs = append(xs, float64(n))
		ys = append(ys, float64(maxR)+1)
	}
	printTable(tb)
	fmt.Printf("observed max-rounds growth exponent: n^%.2f\n", stats.GrowthExponent(xs, ys))
	fmt.Println("\nRound counts normalize away the daemon's freedom to drip-feed one")
	fmt.Println("process per step; SSRmin converges in close-to-linear rounds while")
	fmt.Println("its step complexity is Θ(n²) in the worst case.")
}

func init() {
	register(87, "worstpath", "The exact worst-case execution of the n=3 instance, step by step", runWorstPath)
}

// runWorstPath prints the exact worst-case execution (over all daemon
// strategies and all starting configurations) of the n=3, K=4 instance,
// extracted from the model checker's distance map — the concrete
// counterpart of Theorem 2's O(n²) bound.
func runWorstPath(cfg runConfig) {
	a := core.New(3, 4)
	c := check.New[core.State](a, 0)
	path := c.WorstPath(a.Legitimate)
	if path == nil {
		fmt.Println("FAIL: no worst path (convergence broken?)")
		return
	}
	fmt.Printf("worst-case execution: %d steps (n=3, K=4)\n\n", len(path)-1)
	fmt.Println("step  P0      P1      P2      tokens  legit")
	for i, cfgI := range path {
		tc := verify.Count(cfgI)
		fmt.Printf("%-5d %-7v %-7v %-7v %d       %v\n",
			i, cfgI[0], cfgI[1], cfgI[2], tc.Privileged, a.Legitimate(cfgI))
	}
	fmt.Println("\nEvery transition is a legal unfair-distributed-daemon step; the")
	fmt.Println("daemon drags the system through the longest possible path before the")
	fmt.Println("fix rules and the Dijkstra layer force legitimacy. Note the census")
	fmt.Println("can stray outside [1,2] before convergence — exactly what Theorems")
	fmt.Println("3/4 scope to legitimate (or settled) executions.")
}
