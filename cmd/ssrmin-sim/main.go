// Command ssrmin-sim runs SSRmin in the state-reading model of the paper
// and prints the execution as a Figure-4 style trace or a summary.
//
// Examples:
//
//	ssrmin-sim -n 5 -steps 15                 # the execution of Figure 4
//	ssrmin-sim -n 7 -k 9 -daemon sync -random -seed 3 -summary
//	ssrmin-sim -n 5 -daemon distributed -p 0.5 -tokens
//	ssrmin-sim -n 5 -events /dev/stderr       # JSONL event log alongside
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"ssrmin"
	"ssrmin/internal/cliconf"
)

func main() {
	var cc cliconf.Config
	cc.BindRing(flag.CommandLine, 5)
	cc.BindSteps(flag.CommandLine, 15)
	cc.BindSchedule(flag.CommandLine)
	cc.BindRandom(flag.CommandLine, 1)
	var (
		tokens  = flag.Bool("tokens", false, "print only token positions (Figure 1 style)")
		summary = flag.Bool("summary", false, "print a summary instead of the trace")
		csv     = flag.Bool("csv", false, "emit the execution as CSV")
		events  = flag.String("events", "", "write a JSONL observability event log to this file")
	)
	flag.Parse()

	cc.ResolveK()
	d, err := cc.NewDaemon()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	opts := []ssrmin.Option{ssrmin.WithK(cc.K), ssrmin.WithDaemon(d), ssrmin.WithRecording()}
	if cc.Random {
		alg := ssrmin.New(cc.N, cc.K)
		opts = append(opts, ssrmin.WithInitial(ssrmin.RandomConfig(alg, rand.New(rand.NewSource(cc.Seed)))))
	}
	var jsonl *ssrmin.JSONLSink
	if *events != "" {
		f, err := os.Create(*events)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		jsonl = ssrmin.NewJSONLSink(f)
		opts = append(opts, ssrmin.WithSink(jsonl))
	}
	sim := ssrmin.NewSimulation(cc.N, opts...)

	legitAt := -1
	if sim.Legitimate() {
		legitAt = 0
	}
	for i := 0; i < cc.Steps; i++ {
		if _, ok := sim.Step(); !ok {
			fmt.Fprintln(os.Stderr, "deadlock (should be impossible for SSRmin)")
			break
		}
		if legitAt < 0 && sim.Legitimate() {
			legitAt = sim.Steps()
		}
	}

	switch {
	case *summary:
		tc := sim.Census()
		fmt.Printf("algorithm:   %s\n", sim.Algorithm().Name())
		fmt.Printf("daemon:      %s\n", d.Name())
		fmt.Printf("steps:       %d\n", sim.Steps())
		fmt.Printf("legitimate:  %v (first at step %d)\n", sim.Legitimate(), legitAt)
		fmt.Printf("census:      primary=%d secondary=%d privileged=%d\n", tc.Primary, tc.Secondary, tc.Privileged)
		fmt.Printf("holders:     %v\n", sim.Holders())
	case *csv:
		if err := sim.WriteCSV(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case *tokens:
		if err := sim.RenderTokens(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	default:
		if err := sim.RenderTrace(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if jsonl != nil {
		if err := jsonl.Err(); err != nil {
			fmt.Fprintf(os.Stderr, "event log: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %d events to %s\n", jsonl.Events(), *events)
	}
}
