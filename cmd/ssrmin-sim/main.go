// Command ssrmin-sim runs SSRmin in the state-reading model of the paper
// and prints the execution as a Figure-4 style trace or a summary.
//
// Examples:
//
//	ssrmin-sim -n 5 -steps 15                 # the execution of Figure 4
//	ssrmin-sim -n 7 -k 9 -daemon sync -random -seed 3 -summary
//	ssrmin-sim -n 5 -daemon distributed -p 0.5 -tokens
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"ssrmin"
)

func main() {
	var (
		n       = flag.Int("n", 5, "ring size (≥ 3)")
		k       = flag.Int("k", 0, "counter space K (> n; default n+1)")
		steps   = flag.Int("steps", 15, "number of transitions to run")
		daemonF = flag.String("daemon", "central", "scheduler: central | sync | distributed | quiet | starve")
		p       = flag.Float64("p", 0.5, "inclusion probability for -daemon distributed")
		seed    = flag.Int64("seed", 1, "random seed")
		random  = flag.Bool("random", false, "start from a random configuration instead of the legitimate one")
		tokens  = flag.Bool("tokens", false, "print only token positions (Figure 1 style)")
		summary = flag.Bool("summary", false, "print a summary instead of the trace")
		csv     = flag.Bool("csv", false, "emit the execution as CSV")
	)
	flag.Parse()

	if *k == 0 {
		*k = *n + 1
	}
	var d ssrmin.Daemon
	switch *daemonF {
	case "central":
		d = ssrmin.CentralDaemon(*seed)
	case "sync":
		d = ssrmin.SynchronousDaemon()
	case "distributed":
		d = ssrmin.DistributedDaemon(*seed, *p)
	case "quiet":
		d = ssrmin.AdversarialQuietDaemon(*seed)
	case "starve":
		d = ssrmin.StarvingDaemon(*seed, 0)
	default:
		fmt.Fprintf(os.Stderr, "unknown daemon %q\n", *daemonF)
		os.Exit(2)
	}

	opts := []ssrmin.SimOption{ssrmin.WithK(*k), ssrmin.WithDaemon(d), ssrmin.WithRecording()}
	if *random {
		alg := ssrmin.New(*n, *k)
		opts = append(opts, ssrmin.WithInitial(ssrmin.RandomConfig(alg, rand.New(rand.NewSource(*seed)))))
	}
	sim := ssrmin.NewSimulation(*n, opts...)

	legitAt := -1
	if sim.Legitimate() {
		legitAt = 0
	}
	for i := 0; i < *steps; i++ {
		if _, ok := sim.Step(); !ok {
			fmt.Fprintln(os.Stderr, "deadlock (should be impossible for SSRmin)")
			break
		}
		if legitAt < 0 && sim.Legitimate() {
			legitAt = sim.Steps()
		}
	}

	switch {
	case *summary:
		tc := sim.Census()
		fmt.Printf("algorithm:   %s\n", sim.Algorithm().Name())
		fmt.Printf("daemon:      %s\n", d.Name())
		fmt.Printf("steps:       %d\n", sim.Steps())
		fmt.Printf("legitimate:  %v (first at step %d)\n", sim.Legitimate(), legitAt)
		fmt.Printf("census:      primary=%d secondary=%d privileged=%d\n", tc.Primary, tc.Secondary, tc.Privileged)
		fmt.Printf("holders:     %v\n", sim.Holders())
	case *csv:
		if err := sim.WriteCSV(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case *tokens:
		if err := sim.RenderTokens(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	default:
		if err := sim.RenderTrace(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}
