// Command ssrmin-mp runs the CST-transformed SSRmin (or the Dijkstra
// SSToken baseline) over the discrete-event message-passing network and
// reports the token-census timeline — the message-passing experiments of
// Section 5 of the paper.
//
// Examples:
//
//	ssrmin-mp -n 5 -horizon 10                     # SSRmin, legit start
//	ssrmin-mp -n 5 -alg sstoken -horizon 10        # Figure 11 baseline
//	ssrmin-mp -n 5 -random -loss 0.1 -horizon 60   # Theorem 4 setting
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"ssrmin"
	"ssrmin/internal/cst"
	"ssrmin/internal/dijkstra"
	"ssrmin/internal/msgnet"
	"ssrmin/internal/scenario"
	"ssrmin/internal/trace"
	"ssrmin/internal/verify"
)

func main() {
	var (
		scenarioF = flag.String("scenario", "", "run a JSON scenario file instead of flags (see scenarios/)")

		n       = flag.Int("n", 5, "ring size")
		k       = flag.Int("k", 0, "counter space K (default n+1)")
		algF    = flag.String("alg", "ssrmin", "algorithm: ssrmin | sstoken")
		horizon = flag.Float64("horizon", 10, "simulated seconds to run")
		delay   = flag.Float64("delay", 0.01, "link delay (s)")
		jitter  = flag.Float64("jitter", 0.002, "link jitter bound (s)")
		loss    = flag.Float64("loss", 0, "per-message loss probability")
		refresh = flag.Float64("refresh", 0.05, "cache refresh period (s)")
		hold    = flag.Float64("hold", 0, "critical-section dwell (s)")
		seed    = flag.Int64("seed", 1, "random seed")
		random  = flag.Bool("random", false, "arbitrary initial states and incoherent caches")
	)
	flag.Parse()
	if *scenarioF != "" {
		runScenarioFile(*scenarioF)
		return
	}
	if *k == 0 {
		*k = *n + 1
	}

	switch *algF {
	case "ssrmin":
		runSSRmin(*n, *k, *horizon, *delay, *jitter, *loss, *refresh, *hold, *seed, *random)
	case "sstoken":
		runSSToken(*n, *k, *horizon, *delay, *jitter, *loss, *refresh, *hold, *seed)
	default:
		fmt.Fprintf(os.Stderr, "unknown algorithm %q\n", *algF)
		os.Exit(2)
	}
}

func runSSRmin(n, k int, horizon, delay, jitter, loss, refresh, hold float64, seed int64, random bool) {
	opts := ssrmin.MPOptions{
		K: k, Delay: delay, Jitter: jitter, LossProb: loss,
		Refresh: refresh, Hold: hold, Seed: seed,
	}
	if random {
		alg := ssrmin.New(n, k)
		opts.Initial = ssrmin.RandomConfig(alg, rand.New(rand.NewSource(seed)))
		opts.IncoherentCaches = true
	}
	m := ssrmin.NewMPSimulation(n, opts)
	m.Run(horizon)
	stats := m.Ring().Net.Stats()
	tl := m.Timeline()
	fmt.Printf("algorithm:     ssrmin(n=%d,K=%d)\n", n, k)
	printTimeline(tl, stats, m.RuleExecutions())
	fmt.Printf("final census:  %d privileged %v\n", m.Census(), m.Holders())
}

func runSSToken(n, k int, horizon, delay, jitter, loss, refresh, hold float64, seed int64) {
	alg := dijkstra.New(n, k)
	r := cst.NewRing[dijkstra.State](alg, alg.InitialLegitimate(), cst.Options[dijkstra.State]{
		Link:           msgnet.LinkParams{Delay: msgnet.Time(delay), Jitter: msgnet.Time(jitter), LossProb: loss},
		Refresh:        msgnet.Time(refresh),
		Hold:           msgnet.Time(hold),
		Seed:           seed,
		CoherentCaches: true,
	})
	var tl verify.Timeline
	r.Net.Observer = func(now msgnet.Time) {
		tl.Record(float64(now), r.Census(dijkstra.HasToken))
	}
	r.Net.Run(msgnet.Time(horizon))
	tl.Close(float64(r.Net.Now()))
	fmt.Printf("algorithm:     %s under CST\n", alg.Name())
	printTimeline(&tl, r.Net.Stats(), r.RuleExecutions())
}

func printTimeline(tl *verify.Timeline, stats msgnet.Stats, execs int) {
	fmt.Printf("census span:   min=%d max=%d\n", tl.MinCount(), tl.MaxCount())
	for _, c := range tl.Counts() {
		fmt.Printf("  %d holder(s): %6.2f%% of time (%.3fs)\n", c, 100*tl.Fraction(c), tl.Duration(c))
	}
	fmt.Printf("rules:         %d executions\n", execs)
	fmt.Printf("messages:      sent=%d delivered=%d suppressed=%d lost=%d dup=%d\n",
		stats.Sent, stats.Delivered, stats.Suppressed, stats.Lost, stats.Duplicated)
	fmt.Println("census strip ('.' marks instants with zero holders):")
	if err := trace.RenderTimeline(os.Stdout, tl, 100); err != nil {
		fmt.Fprintln(os.Stderr, err)
	}
}

// runScenarioFile executes every scenario in a JSON document and prints
// the results as JSON.
func runScenarioFile(path string) {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	ss, err := scenario.Load(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, s := range ss {
		res, err := s.Run()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := scenario.WriteResult(os.Stdout, res); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}
