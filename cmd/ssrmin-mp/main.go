// Command ssrmin-mp runs the CST-transformed SSRmin (or the Dijkstra
// SSToken baseline) over the discrete-event message-passing network and
// reports the token-census timeline — the message-passing experiments of
// Section 5 of the paper.
//
// Examples:
//
//	ssrmin-mp -n 5 -horizon 10                     # SSRmin, legit start
//	ssrmin-mp -n 5 -alg sstoken -horizon 10        # Figure 11 baseline
//	ssrmin-mp -n 5 -random -loss 0.1 -horizon 60   # Theorem 4 setting
//	ssrmin-mp -n 5 -events handover.jsonl          # JSONL event log
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"ssrmin"
	"ssrmin/internal/cliconf"
	"ssrmin/internal/cst"
	"ssrmin/internal/dijkstra"
	"ssrmin/internal/msgnet"
	"ssrmin/internal/scenario"
	"ssrmin/internal/trace"
	"ssrmin/internal/verify"
)

func main() {
	var cc cliconf.Config
	cc.BindRing(flag.CommandLine, 5)
	cc.BindRandom(flag.CommandLine, 1)
	var prof cliconf.Profile
	prof.Bind(flag.CommandLine)
	var (
		scenarioF = flag.String("scenario", "", "run a JSON scenario file instead of flags (see scenarios/)")

		algF    = flag.String("alg", "ssrmin", "algorithm: ssrmin | sstoken")
		horizon = flag.Float64("horizon", 10, "simulated seconds to run")
		delay   = flag.Float64("delay", 0.01, "link delay (s)")
		jitter  = flag.Float64("jitter", 0.002, "link jitter bound (s)")
		loss    = flag.Float64("loss", 0, "per-message loss probability")
		refresh = flag.Float64("refresh", 0.05, "cache refresh period (s)")
		hold    = flag.Float64("hold", 0, "critical-section dwell (s)")
		events  = flag.String("events", "", "write a JSONL observability event log to this file")
	)
	flag.Parse()
	if err := prof.Start(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	// runSSRmin/runScenarioFile exit directly on errors; flush the
	// profiles first so a failed run still leaves readable output.
	defer stopProfile(&prof)
	if *scenarioF != "" {
		runScenarioFile(*scenarioF)
		return
	}
	cc.ResolveK()

	switch *algF {
	case "ssrmin":
		runSSRmin(cc, *horizon, *delay, *jitter, *loss, *refresh, *hold, *events)
	case "sstoken":
		runSSToken(cc.N, cc.K, *horizon, *delay, *jitter, *loss, *refresh, *hold, cc.Seed)
	default:
		fmt.Fprintf(os.Stderr, "unknown algorithm %q\n", *algF)
		os.Exit(2)
	}
}

func stopProfile(p *cliconf.Profile) {
	if err := p.Stop(); err != nil {
		fmt.Fprintln(os.Stderr, err)
	}
}

// secs converts a float flag in seconds to the option unit.
func secs(s float64) time.Duration { return time.Duration(s * float64(time.Second)) }

func runSSRmin(cc cliconf.Config, horizon, delay, jitter, loss, refresh, hold float64, events string) {
	opts := []ssrmin.Option{
		ssrmin.WithK(cc.K), ssrmin.WithSeed(cc.Seed),
		ssrmin.WithDelay(secs(delay)), ssrmin.WithJitter(secs(jitter)),
		ssrmin.WithLoss(loss), ssrmin.WithRefresh(secs(refresh)),
		ssrmin.WithHold(secs(hold)),
	}
	if cc.Random {
		alg := ssrmin.New(cc.N, cc.K)
		opts = append(opts,
			ssrmin.WithInitial(ssrmin.RandomConfig(alg, rand.New(rand.NewSource(cc.Seed)))),
			ssrmin.WithIncoherentCaches())
	}
	var jsonl *ssrmin.JSONLSink
	if events != "" {
		f, err := os.Create(events)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		jsonl = ssrmin.NewJSONLSink(f)
		opts = append(opts, ssrmin.WithSink(jsonl))
	}
	m := ssrmin.NewMPSimulation(cc.N, opts...)
	m.Run(horizon)
	stats := m.Ring().Net.Stats()
	tl := m.Timeline()
	fmt.Printf("algorithm:     ssrmin(n=%d,K=%d)\n", cc.N, cc.K)
	printTimeline(tl, stats, m.RuleExecutions())
	fmt.Printf("final census:  %d privileged %v\n", m.Census(), m.Holders())
	if jsonl != nil {
		if err := jsonl.Err(); err != nil {
			fmt.Fprintf(os.Stderr, "event log: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %d events to %s\n", jsonl.Events(), events)
	}
}

func runSSToken(n, k int, horizon, delay, jitter, loss, refresh, hold float64, seed int64) {
	alg := dijkstra.New(n, k)
	r := cst.NewRing[dijkstra.State](alg, alg.InitialLegitimate(), cst.Options[dijkstra.State]{
		Link:           msgnet.LinkParams{Delay: msgnet.Time(delay), Jitter: msgnet.Time(jitter), LossProb: loss},
		Refresh:        msgnet.Time(refresh),
		Hold:           msgnet.Time(hold),
		Seed:           seed,
		CoherentCaches: true,
	})
	var tl verify.Timeline
	r.Net.Observer = func(now msgnet.Time) {
		tl.Record(float64(now), r.Census(dijkstra.HasToken))
	}
	r.Net.Run(msgnet.Time(horizon))
	tl.Close(float64(r.Net.Now()))
	fmt.Printf("algorithm:     %s under CST\n", alg.Name())
	printTimeline(&tl, r.Net.Stats(), r.RuleExecutions())
}

func printTimeline(tl *verify.Timeline, stats msgnet.Stats, execs int) {
	fmt.Printf("census span:   min=%d max=%d\n", tl.MinCount(), tl.MaxCount())
	for _, c := range tl.Counts() {
		fmt.Printf("  %d holder(s): %6.2f%% of time (%.3fs)\n", c, 100*tl.Fraction(c), tl.Duration(c))
	}
	fmt.Printf("rules:         %d executions\n", execs)
	fmt.Printf("messages:      sent=%d delivered=%d suppressed=%d lost=%d dup=%d\n",
		stats.Sent, stats.Delivered, stats.Suppressed, stats.Lost, stats.Duplicated)
	fmt.Println("census strip ('.' marks instants with zero holders):")
	if err := trace.RenderTimeline(os.Stdout, tl, 100); err != nil {
		fmt.Fprintln(os.Stderr, err)
	}
}

// runScenarioFile executes every scenario in a JSON document and prints
// the results as JSON.
func runScenarioFile(path string) {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	ss, err := scenario.Load(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, s := range ss {
		res, err := s.Run()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := scenario.WriteResult(os.Stdout, res); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}
