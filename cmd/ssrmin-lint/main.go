// Command ssrmin-lint runs the repository's stdlib-only analyzer suite
// (internal/lint) over the packages named on the command line and exits
// non-zero when any analyzer reports a finding.
//
// Patterns are directories relative to the module root ("./internal/msgnet"),
// import paths ("ssrmin/internal/check"), or recursive forms ending in
// "/..." — the default is "./...". Only packages an analyzer declares in
// its target list are loaded at all, so a repo-wide run type-checks just
// the algorithm, trace and runtime packages plus their dependencies.
//
// Output is one "file:line:col: message [analyzer]" line per finding, or
// a JSON array with -json. Findings are suppressed by an adjacent
// "//lint:ignore <analyzer> <reason>" comment; the reason is mandatory.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"

	"ssrmin/internal/lint"
)

func main() {
	var (
		jsonOut = flag.Bool("json", false, "emit diagnostics as a JSON array on stdout")
		subset  = flag.String("analyzers", "", "comma-separated analyzer subset (default: all)")
		list    = flag.Bool("list", false, "list the analyzers and their target packages, then exit")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: ssrmin-lint [-json] [-analyzers a,b] [packages]\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
			for _, p := range a.Packages {
				fmt.Printf("%-16s   %s\n", "", p)
			}
		}
		return
	}

	analyzers := lint.All()
	if *subset != "" {
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*subset, ",") {
			a := lint.Lookup(strings.TrimSpace(name))
			if a == nil {
				fatalf("unknown analyzer %q (have: %s)", name, analyzerNames())
			}
			analyzers = append(analyzers, a)
		}
	}

	loader, err := lint.NewLoader(".")
	if err != nil {
		fatalf("%v", err)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dirs, err := resolve(loader, patterns)
	if err != nil {
		fatalf("%v", err)
	}

	var diags []lint.Diagnostic
	for _, dir := range dirs {
		path, err := loader.ImportPath(dir)
		if err != nil {
			fatalf("%v", err)
		}
		var applicable []*lint.Analyzer
		for _, a := range analyzers {
			if a.AppliesTo(path) {
				applicable = append(applicable, a)
			}
		}
		if len(applicable) == 0 {
			continue
		}
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			fatalf("%v", err)
		}
		diags = append(diags, lint.RunAnalyzers(pkg, applicable...)...)
	}

	if *jsonOut {
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(diags); err != nil {
			fatalf("%v", err)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "ssrmin-lint: %d finding(s)\n", len(diags))
		}
		os.Exit(1)
	}
}

// resolve expands package patterns into package directories. A pattern is
// a directory, an import path under the module, or either form suffixed
// with "/..." for a recursive walk. testdata, vendor and hidden
// directories are never descended into.
func resolve(loader *lint.Loader, patterns []string) ([]string, error) {
	var dirs []string
	seen := map[string]bool{}
	add := func(dir string) {
		clean := filepath.Clean(dir)
		if !seen[clean] {
			seen[clean] = true
			dirs = append(dirs, clean)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if pat == "..." {
			pat, recursive = ".", true
		} else if strings.HasSuffix(pat, "/...") {
			pat, recursive = strings.TrimSuffix(pat, "/..."), true
		}
		// Import paths under the module map back onto source directories.
		if pat == loader.Module {
			pat = loader.Root
		} else if rest, ok := strings.CutPrefix(pat, loader.Module+"/"); ok {
			pat = filepath.Join(loader.Root, filepath.FromSlash(rest))
		}
		if !recursive {
			add(pat)
			continue
		}
		err := filepath.WalkDir(pat, func(p string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != pat && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if hasGoFiles(p) {
				add(p)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return dirs, nil
}

// hasGoFiles reports whether dir directly contains at least one
// non-test Go source file.
func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") &&
			!strings.HasSuffix(name, "_test.go") && !strings.HasPrefix(name, ".") {
			return true
		}
	}
	return false
}

func analyzerNames() string {
	var names []string
	for _, a := range lint.All() {
		names = append(names, a.Name)
	}
	return strings.Join(names, ", ")
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ssrmin-lint: "+format+"\n", args...)
	os.Exit(2)
}
