package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseStandardUnits(t *testing.T) {
	r, ok := parse("BenchmarkModelCheck/engine/n=4,K=5-8  22  50729155 ns/op  5056 B/op  24 allocs/op")
	if !ok {
		t.Fatal("line not parsed")
	}
	if r.Name != "BenchmarkModelCheck/engine/n=4,K=5-8" || r.Iterations != 22 {
		t.Fatalf("header: %+v", r)
	}
	if r.NsPerOp != 50729155 || r.BytesPerOp != 5056 || r.AllocsPerOp != 24 {
		t.Fatalf("units: %+v", r)
	}
	if len(r.Metrics) != 0 {
		t.Fatalf("unexpected custom metrics: %v", r.Metrics)
	}
}

func TestParseCustomMetrics(t *testing.T) {
	r, ok := parse("BenchmarkMsgnetStorm/arena/n=32-8  120  9876543 ns/op  1234567 events/s  48 B/op  2 allocs/op")
	if !ok {
		t.Fatal("line not parsed")
	}
	if r.Metrics["events/s"] != 1234567 {
		t.Fatalf("events/s not captured: %+v", r)
	}
	if r.NsPerOp != 9876543 || r.BytesPerOp != 48 || r.AllocsPerOp != 2 {
		t.Fatalf("standard units corrupted by custom metric: %+v", r)
	}
}

func TestParseRejectsNonBenchmarkLines(t *testing.T) {
	for _, line := range []string{
		"goos: linux",
		"PASS",
		"ok  \tssrmin\t1.23s",
		"BenchmarkBroken  notanumber  5 ns/op",
		"BenchmarkNoNs-8  10  42 B/op",
	} {
		if _, ok := parse(line); ok {
			t.Errorf("parsed non-result line %q", line)
		}
	}
}

func TestMergeRunsTakesMedian(t *testing.T) {
	in := []Result{
		{Name: "BenchmarkA", NsPerOp: 900, AllocsPerOp: 1},
		{Name: "BenchmarkB", NsPerOp: 50},
		{Name: "BenchmarkA", NsPerOp: 700, AllocsPerOp: 3},
		{Name: "BenchmarkA", NsPerOp: 800, AllocsPerOp: 2},
	}
	out := mergeRuns(in)
	if len(out) != 2 {
		t.Fatalf("merged to %d records, want 2: %+v", len(out), out)
	}
	if out[0].Name != "BenchmarkA" || out[1].Name != "BenchmarkB" {
		t.Fatalf("first-occurrence order lost: %+v", out)
	}
	// Median run is the 800 ns one; its sibling units ride along.
	if out[0].NsPerOp != 800 || out[0].AllocsPerOp != 2 {
		t.Fatalf("median run not selected: %+v", out[0])
	}
}

// writeRecords marshals results the way the main path does, via a round
// trip through the real file format.
func writeRecords(t *testing.T, dir, name, body string) string {
	t.Helper()
	p := filepath.Join(dir, name)
	if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestCompareWithinThreshold(t *testing.T) {
	dir := t.TempDir()
	oldP := writeRecords(t, dir, "old.json",
		`[{"name":"BenchmarkA","iterations":10,"ns_per_op":1000}]`)
	newP := writeRecords(t, dir, "new.json",
		`[{"name":"BenchmarkA","iterations":10,"ns_per_op":1050}]`)
	report, fail, err := compareFiles(oldP, newP, 10)
	if err != nil {
		t.Fatal(err)
	}
	if fail {
		t.Fatalf("5%% drift failed a 10%% threshold:\n%s", report)
	}
	if !strings.Contains(report, "BenchmarkA") {
		t.Fatalf("report omits the benchmark:\n%s", report)
	}
}

func TestCompareFlagsRegression(t *testing.T) {
	dir := t.TempDir()
	oldP := writeRecords(t, dir, "old.json",
		`[{"name":"BenchmarkA","iterations":10,"ns_per_op":1000},
		  {"name":"BenchmarkB","iterations":10,"ns_per_op":2000}]`)
	newP := writeRecords(t, dir, "new.json",
		`[{"name":"BenchmarkA","iterations":10,"ns_per_op":1300},
		  {"name":"BenchmarkB","iterations":10,"ns_per_op":1900}]`)
	report, fail, err := compareFiles(oldP, newP, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !fail {
		t.Fatalf("30%% regression passed a 10%% threshold:\n%s", report)
	}
	if !strings.Contains(report, "FAIL BenchmarkA") {
		t.Fatalf("regressed benchmark not flagged:\n%s", report)
	}
	if !strings.Contains(report, "ok   BenchmarkB") {
		t.Fatalf("improved benchmark wrongly flagged:\n%s", report)
	}
}

func TestCompareMissingBenchmarkFails(t *testing.T) {
	dir := t.TempDir()
	oldP := writeRecords(t, dir, "old.json",
		`[{"name":"BenchmarkA","iterations":10,"ns_per_op":1000},
		  {"name":"BenchmarkGone","iterations":10,"ns_per_op":500}]`)
	newP := writeRecords(t, dir, "new.json",
		`[{"name":"BenchmarkA","iterations":10,"ns_per_op":1000}]`)
	report, fail, err := compareFiles(oldP, newP, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !fail {
		t.Fatalf("vanished benchmark passed:\n%s", report)
	}
	if !strings.Contains(report, "BenchmarkGone") || !strings.Contains(report, "missing") {
		t.Fatalf("report does not name the missing benchmark:\n%s", report)
	}
}

func TestCompareMissingMetricFails(t *testing.T) {
	dir := t.TempDir()
	oldP := writeRecords(t, dir, "old.json",
		`[{"name":"BenchmarkA","iterations":10,"ns_per_op":1000,"metrics":{"events/s":500,"cfg/s":9}}]`)
	newP := writeRecords(t, dir, "new.json",
		`[{"name":"BenchmarkA","iterations":10,"ns_per_op":1000,"metrics":{"events/s":510}}]`)
	report, fail, err := compareFiles(oldP, newP, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !fail {
		t.Fatalf("vanished custom metric passed silently:\n%s", report)
	}
	if !strings.Contains(report, `metric "cfg/s"`) || !strings.Contains(report, "missing from") {
		t.Fatalf("report does not name the vanished metric:\n%s", report)
	}
	// Shared metrics are informational, never a failure by themselves.
	if !strings.Contains(report, "events/s") {
		t.Fatalf("report omits the shared metric:\n%s", report)
	}

	// The other direction — a metric only the new file records — is an
	// error too: the baseline never measured it.
	report, fail, err = compareFiles(newP, oldP, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !fail || !strings.Contains(report, `metric "cfg/s"`) {
		t.Fatalf("metric present only in the new file passed silently:\n%s", report)
	}
}

func TestCompareZeroBaselineFails(t *testing.T) {
	dir := t.TempDir()
	oldP := writeRecords(t, dir, "old.json",
		`[{"name":"BenchmarkA","iterations":10,"ns_per_op":0}]`)
	newP := writeRecords(t, dir, "new.json",
		`[{"name":"BenchmarkA","iterations":10,"ns_per_op":1000}]`)
	report, fail, err := compareFiles(oldP, newP, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !fail {
		t.Fatalf("zero ns/op baseline passed silently:\n%s", report)
	}
	if strings.Contains(report, "Inf") || strings.Contains(report, "NaN") {
		t.Fatalf("report leaked a division by zero:\n%s", report)
	}
	if !strings.Contains(report, "non-positive baseline") {
		t.Fatalf("report does not explain the zero baseline:\n%s", report)
	}
}

func TestCompareUnreadableInput(t *testing.T) {
	dir := t.TempDir()
	okP := writeRecords(t, dir, "ok.json",
		`[{"name":"BenchmarkA","iterations":10,"ns_per_op":1000}]`)
	if _, _, err := compareFiles(filepath.Join(dir, "absent.json"), okP, 10); err == nil {
		t.Fatal("missing old file not reported")
	}
	badP := writeRecords(t, dir, "bad.json", `{not json`)
	if _, _, err := compareFiles(okP, badP, 10); err == nil {
		t.Fatal("malformed new file not reported")
	}
	emptyP := writeRecords(t, dir, "empty.json", `[]`)
	if _, _, err := compareFiles(okP, emptyP, 10); err == nil {
		t.Fatal("empty record file not reported")
	}
}
