// Command benchjson converts `go test -bench` output into a JSON record
// file so benchmark trajectories can be tracked across commits
// (BENCH_check.json in this repository; see `make bench-check`). It reads
// the benchmark output on stdin, echoes it unchanged to stdout, and writes
// the parsed results to -o.
//
//	go test -run '^$' -bench 'ModelCheck|ParallelSweep' -benchmem . \
//	    | go run ./cmd/benchjson -o BENCH_check.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

func main() {
	out := flag.String("o", "BENCH_check.json", "output JSON file")
	flag.Parse()

	var results []Result
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		if r, ok := parse(line); ok {
			results = append(results, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: reading stdin: %v\n", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found on stdin")
		os.Exit(1)
	}
	buf, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d results to %s\n", len(results), *out)
}

// parse decodes one `go test -bench` result line, e.g.
//
//	BenchmarkModelCheck/engine/n=4,K=5-8  22  50729155 ns/op  5056 B/op  24 allocs/op
func parse(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: fields[0], Iterations: iters}
	for i := 2; i+1 < len(fields); i++ {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			r.BytesPerOp = int64(v)
		case "allocs/op":
			r.AllocsPerOp = int64(v)
		}
	}
	if r.NsPerOp == 0 {
		return Result{}, false
	}
	return r, true
}
