// Command benchjson converts `go test -bench` output into a JSON record
// file so benchmark trajectories can be tracked across commits
// (BENCH_check.json and BENCH_msgnet.json in this repository; see
// `make bench-check` / `make bench-msgnet`). It reads the benchmark
// output on stdin, echoes it unchanged to stdout, and writes the parsed
// results to -o.
//
//	go test -run '^$' -bench 'ModelCheck|ParallelSweep' -benchmem . \
//	    | go run ./cmd/benchjson -o BENCH_check.json
//
// With -compare it instead diffs two record files and exits non-zero on
// regression, so CI can gate on a committed baseline:
//
//	go run ./cmd/benchjson -compare old.json new.json -max-regress 10
//
// fails (exit 1) if any benchmark present in old.json is missing from
// new.json or got more than 10% slower in ns/op.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
	// Metrics holds custom b.ReportMetric units, e.g. "events/s" or
	// "cfg/s" — anything on the line beyond the three standard units.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	out := flag.String("o", "BENCH_check.json", "output JSON file")
	compare := flag.Bool("compare", false,
		"compare two record files: benchjson -compare old.json new.json [-max-regress pct]")
	maxRegress := flag.Float64("max-regress", 10,
		"with -compare, fail if ns/op regresses by more than this percentage")
	flag.Parse()

	if *compare {
		// The documented calling convention puts -max-regress after the two
		// positional files; the flag package stops parsing at the first
		// positional, so re-scan the remaining args by hand.
		files := make([]string, 0, 2)
		args := flag.Args()
		for i := 0; i < len(args); i++ {
			a := args[i]
			if a == "-max-regress" || a == "--max-regress" {
				if i+1 >= len(args) {
					fmt.Fprintln(os.Stderr, "benchjson: -max-regress needs a value")
					os.Exit(2)
				}
				v, err := strconv.ParseFloat(args[i+1], 64)
				if err != nil {
					fmt.Fprintf(os.Stderr, "benchjson: -max-regress: %v\n", err)
					os.Exit(2)
				}
				*maxRegress = v
				i++
				continue
			}
			files = append(files, a)
		}
		if len(files) != 2 {
			fmt.Fprintln(os.Stderr, "usage: benchjson -compare old.json new.json [-max-regress pct]")
			os.Exit(2)
		}
		report, fail, err := compareFiles(files[0], files[1], *maxRegress)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(2)
		}
		fmt.Print(report)
		if fail {
			os.Exit(1)
		}
		return
	}

	var results []Result
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		if r, ok := parse(line); ok {
			results = append(results, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: reading stdin: %v\n", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found on stdin")
		os.Exit(1)
	}
	results = mergeRuns(results)
	buf, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d results to %s\n", len(results), *out)
}

// parse decodes one `go test -bench` result line, e.g.
//
//	BenchmarkModelCheck/engine/n=4,K=5-8  22  50729155 ns/op  5056 B/op  24 allocs/op
func parse(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: fields[0], Iterations: iters}
	for i := 2; i+1 < len(fields); i++ {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			r.BytesPerOp = int64(v)
		case "allocs/op":
			r.AllocsPerOp = int64(v)
		default:
			// A custom b.ReportMetric unit always contains a slash
			// ("events/s", "MB/s"); bare numbers next to each other do not.
			if strings.Contains(unit, "/") {
				if r.Metrics == nil {
					r.Metrics = map[string]float64{}
				}
				r.Metrics[unit] = v
			} else {
				continue // next field may still be a value
			}
		}
		i++ // consume the unit
	}
	if r.NsPerOp == 0 {
		return Result{}, false
	}
	return r, true
}

// mergeRuns collapses repeated runs of the same benchmark (`go test
// -count N`) into one record each: the run with the median ns/op, so
// the record stays internally coherent (its B/op, allocs/op and custom
// metrics all come from the same run) while a single outlier run cannot
// skew the committed baseline. First-occurrence order is preserved.
func mergeRuns(results []Result) []Result {
	runs := make(map[string][]Result, len(results))
	order := make([]string, 0, len(results))
	for _, r := range results {
		if _, seen := runs[r.Name]; !seen {
			order = append(order, r.Name)
		}
		runs[r.Name] = append(runs[r.Name], r)
	}
	merged := make([]Result, 0, len(order))
	for _, name := range order {
		rs := runs[name]
		sort.Slice(rs, func(i, j int) bool { return rs[i].NsPerOp < rs[j].NsPerOp })
		merged = append(merged, rs[(len(rs)-1)/2])
	}
	return merged
}

// compareFiles diffs two record files written by benchjson. Every
// benchmark in oldPath must exist in newPath (a vanished benchmark is a
// regression in coverage) and must not have slowed down in ns/op by more
// than maxRegress percent. It returns a human-readable report and
// whether the comparison failed; err covers unreadable inputs only.
func compareFiles(oldPath, newPath string, maxRegress float64) (report string, fail bool, err error) {
	oldResults, err := loadResults(oldPath)
	if err != nil {
		return "", false, err
	}
	newResults, err := loadResults(newPath)
	if err != nil {
		return "", false, err
	}
	byName := make(map[string]Result, len(newResults))
	for _, r := range newResults {
		byName[r.Name] = r
	}
	var b strings.Builder
	for _, o := range oldResults {
		n, ok := byName[o.Name]
		if !ok {
			fmt.Fprintf(&b, "FAIL %-60s missing from %s\n", o.Name, newPath)
			fail = true
			continue
		}
		if o.NsPerOp <= 0 {
			// A zero or negative baseline makes the percentage meaningless
			// (division by zero) — fail loudly instead of printing +Inf.
			fmt.Fprintf(&b, "FAIL %-60s non-positive baseline %g ns/op in %s — cannot compute regression\n",
				o.Name, o.NsPerOp, oldPath)
			fail = true
			continue
		}
		pct := (n.NsPerOp - o.NsPerOp) / o.NsPerOp * 100
		verdict := "ok  "
		if pct > maxRegress {
			verdict = "FAIL"
			fail = true
		}
		fmt.Fprintf(&b, "%s %-60s %12.0f -> %12.0f ns/op  %+7.1f%% (max +%.1f%%)\n",
			verdict, o.Name, o.NsPerOp, n.NsPerOp, pct, maxRegress)
		if mfail := compareMetrics(&b, o, n, oldPath, newPath); mfail {
			fail = true
		}
	}
	if fail {
		fmt.Fprintf(&b, "benchjson: regression beyond %.1f%% against %s\n", maxRegress, oldPath)
	}
	return b.String(), fail, nil
}

// compareMetrics diffs the custom metric sets of one benchmark. A metric
// present in only one file is an error — a silently vanished (or
// suddenly appearing) ReportMetric means the benchmark no longer
// measures what the baseline recorded, which a ns/op-only diff would
// pass without comment. Shared metrics are reported informationally:
// their units differ in direction (events/s up is good, B/op up is bad),
// so no single threshold applies.
func compareMetrics(b *strings.Builder, o, n Result, oldPath, newPath string) (fail bool) {
	names := make(map[string]bool, len(o.Metrics)+len(n.Metrics))
	for m := range o.Metrics {
		names[m] = true
	}
	for m := range n.Metrics {
		names[m] = true
	}
	sorted := make([]string, 0, len(names))
	for m := range names {
		sorted = append(sorted, m)
	}
	sort.Strings(sorted)
	for _, m := range sorted {
		ov, oOK := o.Metrics[m]
		nv, nOK := n.Metrics[m]
		switch {
		case !nOK:
			fmt.Fprintf(b, "FAIL %-60s metric %q recorded in %s but missing from %s\n", o.Name, m, oldPath, newPath)
			fail = true
		case !oOK:
			fmt.Fprintf(b, "FAIL %-60s metric %q recorded in %s but missing from %s\n", o.Name, m, newPath, oldPath)
			fail = true
		default:
			fmt.Fprintf(b, "info %-60s %12.2f -> %12.2f %s\n", o.Name, ov, nv, m)
		}
	}
	return fail
}

func loadResults(path string) ([]Result, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rs []Result
	if err := json.Unmarshal(buf, &rs); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(rs) == 0 {
		return nil, fmt.Errorf("%s: no benchmark results", path)
	}
	return rs, nil
}
