// Package ssrmin is a from-scratch Go implementation of the
// self-stabilizing token circulation with graceful handover of
// Kakugawa, Kamei and Katayama ("A self-stabilizing token circulation with
// graceful handover on bidirectional ring networks", IJNC 12(1), 2022;
// IPDPSW 2021).
//
// SSRmin solves the mutual inclusion problem — at least one process is
// privileged at every instant — on bidirectional rings, by circulating a
// primary and a secondary token like an inchworm on top of Dijkstra's
// K-state ring. Its token predicates are model gap tolerant: after the
// cached sensornet transform (CST), the guarantee "1 ≤ privileged ≤ 2"
// survives in asynchronous message-passing networks, where plain token
// rings pass through instants with no token at all.
//
// The package offers four execution vehicles over one algorithm core:
//
//   - Simulation: the state-reading/composite-atomicity model of the
//     paper's proofs, under pluggable daemons (schedulers).
//   - MPSimulation: a deterministic discrete-event simulation of the
//     CST-transformed algorithm over lossy, delayed message links.
//   - LiveRing: a real concurrent deployment — one goroutine per node,
//     channels as links — for wall-clock applications such as the
//     camera-network examples.
//   - TCPRing: the algorithm as real network services over TCP sockets
//     (see also cmd/ssrmin-node for multi-process/multi-machine rings).
//
// MultiSimulation composes m independent instances into a (m, 2m)-
// critical-section system. The exhaustive model checker (used by the test
// suite) and the experiment harness that regenerates every figure of the
// paper live in cmd/ and internal/.
//
// # Options
//
// All three in-process constructors — NewSimulation, NewMPSimulation and
// NewLiveRing — accept one shared vocabulary of functional options:
//
//	sim  := ssrmin.NewSimulation(5, ssrmin.WithK(7), ssrmin.WithRecording())
//	mp   := ssrmin.NewMPSimulation(5, ssrmin.WithSeed(1), ssrmin.WithLoss(0.1))
//	ring := ssrmin.NewLiveRing(5, ssrmin.WithSeed(1), ssrmin.WithDelay(2*time.Millisecond))
//
// Options that do not apply to a vehicle are ignored by it (WithDaemon
// only schedules the state-reading simulation; WithHold only delays rule
// execution in the message-passing simulation). WithObserver and WithSink
// attach the instrumentation layer of internal/obs to any vehicle; see
// Observer below.
//
// # Migration from MPOptions/LiveOptions
//
// Before this API, NewMPSimulation and NewLiveRing took dedicated option
// structs. Those structs still compile — they implement Option, so
// NewMPSimulation(n, MPOptions{Seed: 1}) keeps working — but they are
// deprecated. Replace struct fields with the corresponding option:
//
//	MPOptions{K: 7}                 → WithK(7)
//	MPOptions{Seed: 3}              → WithSeed(3)
//	MPOptions{Delay: 0.02}          → WithDelay(20 * time.Millisecond)
//	MPOptions{Jitter: 0.004}        → WithJitter(4 * time.Millisecond)
//	MPOptions{LossProb: 0.1}        → WithLoss(0.1)
//	MPOptions{Refresh: 0.05}        → WithRefresh(50 * time.Millisecond)
//	MPOptions{Hold: 0.02}           → WithHold(20 * time.Millisecond)
//	MPOptions{Initial: cfg}         → WithInitial(cfg)
//	MPOptions{IncoherentCaches: _}  → WithIncoherentCaches()
//	LiveOptions{Delay: d, ...}      → WithDelay(d), ... (same names)
//
// Two live-tier capabilities exist only as functional options — the
// legacy structs never grew them:
//
//	(no struct equivalent)          → WithWorkers(4)
//	(no struct equivalent)          → WithLegacyRuntime()
//
// WithWorkers sets the sharded event-loop engine's worker count;
// WithLegacyRuntime selects the goroutine-per-node runtime NewLiveRing
// used before the engine existed. Observer hookup is also unified now:
// WithObserver and WithSink behave identically on NewLiveRing as on
// NewSimulation/NewMPSimulation — an explicit observer wins, a bare sink
// gets a fresh observer, neither means nil and every hook is nil-guarded
// out of the hot path, on both live backends.
//
// The two vocabularies are bit-identical: a run configured through
// options produces the same trace as the same run configured through the
// legacy structs (asserted by the golden API tests).
package ssrmin

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"ssrmin/internal/cliconf"
	"ssrmin/internal/core"
	"ssrmin/internal/cst"
	"ssrmin/internal/daemon"
	"ssrmin/internal/dijkstra"
	"ssrmin/internal/msgnet"
	"ssrmin/internal/netring"
	"ssrmin/internal/obs"
	"ssrmin/internal/runtime"
	"ssrmin/internal/statemodel"
	"ssrmin/internal/trace"
	"ssrmin/internal/verify"
)

// State is the local state of an SSRmin process: the Dijkstra counter X
// and the rts/tra handshake bits.
type State = core.State

// Config is a configuration: one State per process.
type Config = statemodel.Config[core.State]

// View is a process's read set: its own and its ring neighbors' states.
type View = statemodel.View[core.State]

// Move identifies a process executing a rule.
type Move = statemodel.Move

// Algorithm is an SSRmin instance (ring size n, counter space K).
type Algorithm = core.Algorithm

// Daemon schedules enabled processes; see the With*Daemon options.
type Daemon = statemodel.Daemon

// TokenCount is a census of primary/secondary/privileged processes.
type TokenCount = verify.TokenCount

// New returns an SSRmin algorithm instance with n ≥ 3 processes and
// counter space K > n.
func New(n, k int) *Algorithm { return core.New(n, k) }

// HasPrimary, HasSecondary and HasToken are the token conditions of
// Algorithm 3, re-exported for use with the Holders/Census APIs.
var (
	HasPrimary   = core.HasPrimary
	HasSecondary = core.HasSecondary
	HasToken     = core.HasToken
)

// RandomConfig draws a uniformly random configuration for a.
func RandomConfig(a *Algorithm, rng *rand.Rand) Config {
	cfg := make(Config, a.N())
	for i := range cfg {
		cfg[i] = State{X: rng.Intn(a.K()), RTS: rng.Intn(2) == 1, TRA: rng.Intn(2) == 1}
	}
	return cfg
}

// Count returns the token census of cfg.
func Count(cfg Config) TokenCount { return verify.Count(cfg) }

// ---------------------------------------------------------------------------
// Observability
// ---------------------------------------------------------------------------

// Observer is the instrumentation hub of internal/obs: lock-free counters,
// fixed-bucket histograms and an optional structured event sink. Create
// one with NewObserver, install it with WithObserver (or let WithSink
// create one implicitly), and read it back via the Observer method of the
// vehicle. Its WriteText/Handler methods serve the /metrics text format.
type Observer = obs.Observer

// Sink receives one Event per instrumented occurrence; see NewJSONLSink.
type Sink = obs.Sink

// Event is one structured observability record.
type Event = obs.Event

// EventKind discriminates Event records (rule fired, token moved, ...).
type EventKind = obs.Kind

// JSONLSink writes events as JSON Lines; create one with NewJSONLSink.
type JSONLSink = obs.JSONL

// NewObserver returns an Observer forwarding events to sink. A nil sink
// keeps counters and histograms live but emits no events.
func NewObserver(sink Sink) *Observer { return obs.New(sink) }

// NewJSONLSink returns a Sink encoding each event as one JSON line on w.
func NewJSONLSink(w io.Writer) *JSONLSink { return obs.NewJSONL(w) }

// ---------------------------------------------------------------------------
// Options
// ---------------------------------------------------------------------------

// Option configures NewSimulation, NewMPSimulation or NewLiveRing. All
// three constructors share one vocabulary; options irrelevant to a
// vehicle are ignored by it.
type Option interface{ apply(*options) }

// SimOption is the historical name of Option.
//
// Deprecated: use Option.
type SimOption = Option

type optionFunc func(*options)

func (f optionFunc) apply(c *options) { f(c) }

// options is the merged configuration of all three vehicles. Delays are
// held both as float64 simulated seconds (the message-passing vehicle's
// native unit, preserving the exact float arithmetic of the legacy
// MPOptions defaults) and as time.Duration (the live ring's unit).
type options struct {
	k       int
	daemon  Daemon
	initial Config
	record  bool

	seed    int64
	seedSet bool

	delaySec, jitterSec, refreshSec, holdSec float64
	delayDur, jitterDur, refreshDur          time.Duration
	lossProb                                 float64
	incoherent                               bool

	workers       int
	legacyRuntime bool

	obsv *obs.Observer
	sink obs.Sink
}

// observer resolves the configured instrumentation: an explicit observer
// wins; a bare sink gets a fresh observer; neither means nil (all hooks
// compiled out of the hot paths by nil checks).
func (c *options) observer() *obs.Observer {
	if c.obsv == nil {
		if c.sink == nil {
			return nil
		}
		c.obsv = obs.New(c.sink)
	} else if c.sink != nil {
		c.obsv.SetSink(c.sink)
	}
	return c.obsv
}

func (c *options) seedOr(def int64) int64 {
	if c.seedSet {
		return c.seed
	}
	return def
}

// WithK sets the counter space (default n+1). WithK(0) keeps the
// default, mirroring the zero-field semantics of the legacy
// MPOptions/LiveOptions structs; any other K ≤ n panics in the
// constructor (the algorithm requires K > n).
func WithK(k int) Option {
	return optionFunc(func(c *options) {
		if k != 0 {
			c.k = k
		}
	})
}

// WithDaemon installs a custom scheduler (state-reading simulation only).
func WithDaemon(d Daemon) Option { return optionFunc(func(c *options) { c.daemon = d }) }

// WithInitial sets the initial configuration (default: the canonical
// legitimate configuration with both tokens at P0).
func WithInitial(cfg Config) Option {
	return optionFunc(func(c *options) { c.initial = cfg.Clone() })
}

// WithRecording enables trace capture for RenderTrace/RenderTokens
// (state-reading simulation only).
func WithRecording() Option { return optionFunc(func(c *options) { c.record = true }) }

// WithSeed drives all randomness of the vehicle: the default central
// daemon of NewSimulation (default seed 1), and the link delays, jitter
// and loss draws of NewMPSimulation and NewLiveRing (default seed 0).
func WithSeed(seed int64) Option {
	return optionFunc(func(c *options) { c.seed = seed; c.seedSet = true })
}

// WithDelay sets the base link delay (message-passing and live vehicles).
// Defaults: 10ms simulated for NewMPSimulation, 1ms wall-clock for
// NewLiveRing.
func WithDelay(d time.Duration) Option {
	return optionFunc(func(c *options) { c.delayDur = d; c.delaySec = d.Seconds() })
}

// WithJitter sets the uniform extra delay bound. Defaults: Delay/5
// simulated for NewMPSimulation, 200µs wall-clock for NewLiveRing.
func WithJitter(d time.Duration) Option {
	return optionFunc(func(c *options) { c.jitterDur = d; c.jitterSec = d.Seconds() })
}

// WithRefresh sets the periodic announcement interval. Defaults: 5×Delay
// simulated for NewMPSimulation, 5ms wall-clock for NewLiveRing.
func WithRefresh(d time.Duration) Option {
	return optionFunc(func(c *options) { c.refreshDur = d; c.refreshSec = d.Seconds() })
}

// WithHold sets the critical-section dwell before executing an enabled
// rule (message-passing vehicle only).
func WithHold(d time.Duration) Option {
	return optionFunc(func(c *options) { c.holdSec = d.Seconds() })
}

// WithLoss sets the per-message loss probability.
func WithLoss(p float64) Option { return optionFunc(func(c *options) { c.lossProb = p }) }

// WithIncoherentCaches seeds neighbor caches with arbitrary states instead
// of the neighbors' true states — Theorem-4 style adversarial starts.
func WithIncoherentCaches() Option {
	return optionFunc(func(c *options) { c.incoherent = true })
}

// WithWorkers sets the worker-loop count of the live tier's sharded
// event engine (default GOMAXPROCS, clamped to [1, n]). The execution is
// deterministic for a fixed seed regardless of the worker count. Ignored
// by the other vehicles and by WithLegacyRuntime's goroutine ring.
func WithWorkers(w int) Option {
	return optionFunc(func(c *options) { c.workers = w })
}

// WithLegacyRuntime makes NewLiveRing deploy the goroutine-per-node ring
// (one goroutine per node, Go channels as links) instead of the sharded
// event-loop engine. The engine is the default: it sustains rings of
// 100k+ nodes and is deterministic per seed; the goroutine ring remains
// available as the differential deployment reference.
func WithLegacyRuntime() Option {
	return optionFunc(func(c *options) { c.legacyRuntime = true })
}

// WithObserver installs o as the vehicle's instrumentation hub. The
// vehicle feeds o's counters, histograms and sink; read it back with the
// vehicle's Observer method.
func WithObserver(o *Observer) Option {
	return optionFunc(func(c *options) { c.obsv = o })
}

// WithSink attaches s to the vehicle's observer, creating a fresh
// observer when none was installed with WithObserver.
func WithSink(s Sink) Option { return optionFunc(func(c *options) { c.sink = s }) }

// CentralDaemon activates one random enabled process per step.
func CentralDaemon(seed int64) Daemon {
	return daemon.NewCentralRandom(rand.New(rand.NewSource(seed)))
}

// SynchronousDaemon activates every enabled process each step.
func SynchronousDaemon() Daemon { return daemon.Synchronous{} }

// DistributedDaemon activates each enabled process with probability p.
func DistributedDaemon(seed int64, p float64) Daemon {
	return daemon.NewRandomSubset(rand.New(rand.NewSource(seed)), p)
}

// AdversarialQuietDaemon prefers the non-Dijkstra rules (1, 3, 5),
// delaying real token progress as long as Lemma 5 permits.
func AdversarialQuietDaemon(seed int64) Daemon {
	return daemon.NewRuleBiased(rand.New(rand.NewSource(seed)),
		core.RuleReadySecondary, core.RuleRecvSecondary, core.RuleFixNoG)
}

// StarvingDaemon never schedules the victim processes unless they are the
// only enabled ones — an unfairness witness.
func StarvingDaemon(seed int64, victims ...int) Daemon {
	return daemon.NewStarver(rand.New(rand.NewSource(seed)), victims...)
}

// ParseDaemon builds a daemon from its registry name — one of
// DaemonNames() — sharing the registry used by the cmd/ flag parsing:
// "central", "sync", "distributed", "quiet" or "starve".
func ParseDaemon(name string, seed int64, p float64) (Daemon, error) {
	return cliconf.ParseDaemon(name, seed, p)
}

// DaemonNames lists the names ParseDaemon accepts.
func DaemonNames() []string { return cliconf.DaemonNames() }

// ---------------------------------------------------------------------------
// State-reading simulation
// ---------------------------------------------------------------------------

// Simulation runs SSRmin in the state-reading model under a daemon.
type Simulation struct {
	alg  *Algorithm
	sim  *statemodel.Simulator[core.State]
	rec  *trace.Recorder[core.State]
	obsv *obs.Observer
}

// NewSimulation builds a state-reading simulation of SSRmin with n
// processes. Defaults: K = n+1, a seeded central daemon, the canonical
// legitimate initial configuration.
func NewSimulation(n int, opts ...Option) *Simulation {
	c := options{k: n + 1}
	for _, o := range opts {
		o.apply(&c)
	}
	alg := core.New(n, c.k)
	if c.daemon == nil {
		c.daemon = CentralDaemon(c.seedOr(1))
	}
	if c.initial == nil {
		c.initial = alg.InitialLegitimate()
	}
	s := &Simulation{
		alg:  alg,
		sim:  statemodel.NewSimulator[core.State](alg, c.daemon, c.initial),
		obsv: c.observer(),
	}
	if c.record {
		s.rec = &trace.Recorder[core.State]{}
		s.rec.Attach(s.sim)
	}
	if o := s.obsv; o != nil {
		s.sim.Obs = o
		prev := s.sim.OnStep // compose with the recorder's hook, if any
		lastTok := holderVec(n, alg.TokenHolders(s.sim.Config()))
		lastPrim := firstHolder(alg.PrimaryHolders(s.sim.Config()))
		s.sim.OnStep = func(step int, moves []Move, cfg Config) {
			if prev != nil {
				prev(step, moves, cfg)
			}
			t := float64(step)
			cur := holderVec(n, alg.TokenHolders(cfg))
			for i := 0; i < n; i++ {
				if cur[i] != lastTok[i] {
					o.Handover(t, i, cur[i])
				}
			}
			lastTok = cur
			if p := firstHolder(alg.PrimaryHolders(cfg)); p != lastPrim {
				if p >= 0 && lastPrim >= 0 {
					o.TokenMoved(t, lastPrim, p)
				}
				lastPrim = p
			}
		}
	}
	return s
}

// holderVec expands a holder id list into a per-process bool vector so
// handover diffs iterate in deterministic process order.
func holderVec(n int, ids []int) []bool {
	v := make([]bool, n)
	for _, i := range ids {
		v[i] = true
	}
	return v
}

func firstHolder(ids []int) int {
	if len(ids) == 0 {
		return -1
	}
	return ids[0]
}

// Algorithm returns the underlying algorithm instance.
func (s *Simulation) Algorithm() *Algorithm { return s.alg }

// Observer returns the installed instrumentation hub, or nil.
func (s *Simulation) Observer() *Observer { return s.obsv }

// Config returns a copy of the current configuration.
func (s *Simulation) Config() Config { return s.sim.Config() }

// Steps returns the number of transitions executed.
func (s *Simulation) Steps() int { return s.sim.Steps() }

// Enabled returns the currently enabled moves.
func (s *Simulation) Enabled() []Move { return s.sim.Enabled() }

// Step performs one transition; ok is false on deadlock (which Lemma 4
// rules out for SSRmin).
func (s *Simulation) Step() (moves []Move, ok bool) { return s.sim.Step() }

// Run performs up to maxSteps transitions and returns how many ran.
func (s *Simulation) Run(maxSteps int) int { return s.sim.Run(maxSteps) }

// RunUntilLegitimate steps until the configuration is legitimate
// (Definition 1) or maxSteps transitions elapsed; it returns the number of
// steps taken and whether legitimacy was reached.
func (s *Simulation) RunUntilLegitimate(maxSteps int) (int, bool) {
	steps, ok := s.sim.RunUntil(s.alg.Legitimate, maxSteps)
	if ok && s.obsv != nil {
		s.obsv.ConvergedAt(float64(s.sim.Steps()), steps)
	}
	return steps, ok
}

// Legitimate reports whether the current configuration is legitimate.
func (s *Simulation) Legitimate() bool { return s.alg.Legitimate(s.sim.Config()) }

// Holders returns the indices of the currently privileged processes.
func (s *Simulation) Holders() []int { return s.alg.TokenHolders(s.sim.Config()) }

// Census returns the current token census.
func (s *Simulation) Census() TokenCount { return verify.Count(s.sim.Config()) }

// RenderTrace writes the recorded execution as a Figure-4 style table.
// The simulation must have been created WithRecording.
func (s *Simulation) RenderTrace(w io.Writer) error {
	if s.rec == nil {
		return fmt.Errorf("ssrmin: simulation was not created WithRecording")
	}
	return trace.RenderSSRmin(w, s.rec)
}

// RenderTokens writes the recorded execution as a Figure-1 style table
// (token positions only).
func (s *Simulation) RenderTokens(w io.Writer) error {
	if s.rec == nil {
		return fmt.Errorf("ssrmin: simulation was not created WithRecording")
	}
	return trace.RenderTokens(w, s.rec)
}

// WriteCSV exports the recorded execution as CSV.
func (s *Simulation) WriteCSV(w io.Writer) error {
	if s.rec == nil {
		return fmt.Errorf("ssrmin: simulation was not created WithRecording")
	}
	return trace.WriteCSV(w, s.rec)
}

// ---------------------------------------------------------------------------
// Message-passing simulation (CST over a discrete-event network)
// ---------------------------------------------------------------------------

// MPOptions configures a message-passing simulation.
//
// Deprecated: pass functional options to NewMPSimulation instead; see the
// migration table in the package documentation. MPOptions implements
// Option, so existing call sites keep compiling and behave identically.
type MPOptions struct {
	// K is the counter space (default n+1).
	K int
	// Delay is the base link delay in simulated seconds (default 0.01).
	Delay float64
	// Jitter is the uniform extra delay bound (default Delay/5).
	Jitter float64
	// LossProb is the per-message loss probability.
	LossProb float64
	// Refresh is the periodic announcement interval (default 5×Delay).
	Refresh float64
	// Hold is the critical-section dwell before executing an enabled rule.
	Hold float64
	// Seed drives all randomness.
	Seed int64
	// Initial is the starting configuration (default: canonical
	// legitimate).
	Initial Config
	// CoherentCaches seeds caches with true neighbor states (default
	// true). Set false together with Initial for Theorem-4 style runs.
	IncoherentCaches bool
}

// apply merges the non-zero fields, making the legacy struct a valid
// Option. Zero fields mean "default", exactly as they always did.
func (o MPOptions) apply(c *options) {
	if o.K != 0 {
		c.k = o.K
	}
	if o.Delay != 0 {
		c.delaySec = o.Delay
	}
	if o.Jitter != 0 {
		c.jitterSec = o.Jitter
	}
	if o.LossProb != 0 {
		c.lossProb = o.LossProb
	}
	if o.Refresh != 0 {
		c.refreshSec = o.Refresh
	}
	if o.Hold != 0 {
		c.holdSec = o.Hold
	}
	if o.Seed != 0 {
		c.seed = o.Seed
		c.seedSet = true
	}
	if o.Initial != nil {
		c.initial = o.Initial
	}
	if o.IncoherentCaches {
		c.incoherent = true
	}
}

// MPSimulation is a CST-transformed SSRmin ring over the discrete-event
// network, with a token-census timeline attached.
type MPSimulation struct {
	alg  *Algorithm
	ring *cst.Ring[core.State]
	tl   verify.Timeline
	obsv *obs.Observer
	done bool
}

// NewMPSimulation builds the message-passing simulation.
func NewMPSimulation(n int, opts ...Option) *MPSimulation {
	c := options{k: n + 1}
	for _, o := range opts {
		o.apply(&c)
	}
	// Defaults use the exact float arithmetic of the legacy MPOptions
	// path so seeded runs stay bit-identical across the API change.
	delay := c.delaySec
	if delay == 0 {
		delay = 0.01
	}
	jitter := c.jitterSec
	if jitter == 0 {
		jitter = delay / 5
	}
	refresh := c.refreshSec
	if refresh == 0 {
		refresh = 5 * delay
	}
	k := c.k
	alg := core.New(n, k)
	init := c.initial
	if init == nil {
		init = alg.InitialLegitimate()
	}
	ring := cst.NewRing[core.State](alg, init, cst.Options[core.State]{
		Link: msgnet.LinkParams{
			Delay:    msgnet.Time(delay),
			Jitter:   msgnet.Time(jitter),
			LossProb: c.lossProb,
		},
		Refresh:        msgnet.Time(refresh),
		Hold:           msgnet.Time(c.holdSec),
		Seed:           c.seedOr(0),
		CoherentCaches: !c.incoherent,
		RandomState: func(rng *rand.Rand) State {
			return State{X: rng.Intn(k), RTS: rng.Intn(2) == 1, TRA: rng.Intn(2) == 1}
		},
	})
	m := &MPSimulation{alg: alg, ring: ring, obsv: c.observer()}
	if o := m.obsv; o == nil {
		ring.Net.Observer = func(now msgnet.Time) {
			m.tl.Record(float64(now), ring.Census(core.HasToken))
		}
	} else {
		ring.Net.Obs = o
		for i, nd := range ring.Nodes {
			id := i
			nd.OnExecute = func(now msgnet.Time, rule int) {
				o.RuleFired(float64(now), id, rule)
			}
		}
		lastTok := holderVec(n, ring.Holders(core.HasToken))
		lastPrim := firstHolder(ring.Holders(core.HasPrimary))
		ring.Net.Observer = func(now msgnet.Time) {
			t := float64(now)
			m.tl.Record(t, ring.Census(core.HasToken))
			cur := holderVec(n, ring.Holders(core.HasToken))
			for i := 0; i < n; i++ {
				if cur[i] != lastTok[i] {
					o.Handover(t, i, cur[i])
				}
			}
			lastTok = cur
			if p := firstHolder(ring.Holders(core.HasPrimary)); p != lastPrim {
				if p >= 0 && lastPrim >= 0 {
					o.TokenMoved(t, lastPrim, p)
				}
				lastPrim = p
			}
		}
	}
	return m
}

// Observer returns the installed instrumentation hub, or nil.
func (m *MPSimulation) Observer() *Observer { return m.obsv }

// Run advances simulated time to the given horizon (seconds).
func (m *MPSimulation) Run(until float64) {
	m.ring.Net.Run(msgnet.Time(until))
}

// Timeline closes and returns the census timeline. The simulation must not
// be advanced afterwards.
func (m *MPSimulation) Timeline() *verify.Timeline {
	if !m.done {
		m.tl.Close(float64(m.ring.Net.Now()))
		m.done = true
	}
	return &m.tl
}

// Census returns the current number of privileged nodes (as perceived
// through the nodes' caches).
func (m *MPSimulation) Census() int { return m.ring.Census(core.HasToken) }

// Holders returns the ids of currently privileged nodes.
func (m *MPSimulation) Holders() []int { return m.ring.Holders(core.HasToken) }

// States returns the vector of true node states.
func (m *MPSimulation) States() Config { return m.ring.States() }

// Coherent reports whether all caches match the neighbors' true states.
func (m *MPSimulation) Coherent() bool { return m.ring.Coherent() }

// RuleExecutions returns the total number of rules executed.
func (m *MPSimulation) RuleExecutions() int { return m.ring.RuleExecutions() }

// MessagesSent returns the number of messages that entered a link.
func (m *MPSimulation) MessagesSent() int { return m.ring.Net.Stats().Sent }

// Ring exposes the underlying CST ring for advanced use (fault injection,
// custom observers).
func (m *MPSimulation) Ring() *cst.Ring[core.State] { return m.ring }

// ---------------------------------------------------------------------------
// Live goroutine/channel deployment
// ---------------------------------------------------------------------------

// LiveOptions configures a live ring.
//
// Deprecated: pass functional options to NewLiveRing instead; see the
// migration table in the package documentation. LiveOptions implements
// Option, so existing call sites keep compiling and behave identically.
type LiveOptions struct {
	// K is the counter space (default n+1).
	K int
	// Delay, Jitter, LossProb and Refresh mirror MPOptions in wall-clock
	// time. Defaults: 1ms delay, 200µs jitter, no loss, 5ms refresh.
	Delay, Jitter, Refresh time.Duration
	LossProb               float64
	// Seed drives all randomness.
	Seed int64
	// Initial is the starting configuration (default canonical
	// legitimate); IncoherentCaches seeds caches arbitrarily.
	Initial          Config
	IncoherentCaches bool
}

// apply merges the non-zero fields, making the legacy struct a valid
// Option. Zero fields mean "default", exactly as they always did.
func (o LiveOptions) apply(c *options) {
	if o.K != 0 {
		c.k = o.K
	}
	if o.Delay != 0 {
		c.delayDur = o.Delay
	}
	if o.Jitter != 0 {
		c.jitterDur = o.Jitter
	}
	if o.Refresh != 0 {
		c.refreshDur = o.Refresh
	}
	if o.LossProb != 0 {
		c.lossProb = o.LossProb
	}
	if o.Seed != 0 {
		c.seed = o.Seed
		c.seedSet = true
	}
	if o.Initial != nil {
		c.initial = o.Initial
	}
	if o.IncoherentCaches {
		c.incoherent = true
	}
}

// LiveRing is a running SSRmin deployment. The default backend is the
// sharded event-loop engine (runtime.Engine): worker loops over
// contiguous ring arcs in wall-clock-paced virtual time, deterministic
// per seed, sustaining 100k+ nodes. WithLegacyRuntime selects the
// goroutine-per-node backend (runtime.Ring): one goroutine per node, Go
// channels as one-message-per-direction links.
type LiveRing struct {
	alg  *Algorithm
	ring *runtime.Ring[core.State]   // legacy backend, nil otherwise
	eng  *runtime.Engine[core.State] // default backend, nil when legacy
	obsv *obs.Observer
}

// NewLiveRing builds (but does not start) a live ring.
func NewLiveRing(n int, opts ...Option) *LiveRing {
	c := options{k: n + 1}
	for _, o := range opts {
		o.apply(&c)
	}
	delay := c.delayDur
	if delay == 0 {
		delay = time.Millisecond
	}
	jitter := c.jitterDur
	if jitter == 0 {
		jitter = 200 * time.Microsecond
	}
	refresh := c.refreshDur
	if refresh == 0 {
		refresh = 5 * time.Millisecond
	}
	k := c.k
	alg := core.New(n, k)
	init := c.initial
	if init == nil {
		init = alg.InitialLegitimate()
	}
	ropts := runtime.Options[core.State]{
		Delay:          delay,
		Jitter:         jitter,
		LossProb:       c.lossProb,
		Refresh:        refresh,
		Seed:           c.seedOr(0),
		CoherentCaches: !c.incoherent,
		Workers:        c.workers,
	}
	if c.incoherent {
		ropts.RandomState = func(rng *rand.Rand) State {
			return State{X: rng.Intn(k), RTS: rng.Intn(2) == 1, TRA: rng.Intn(2) == 1}
		}
	}
	l := &LiveRing{alg: alg, obsv: c.observer()}
	if c.legacyRuntime {
		l.ring = runtime.NewRing[core.State](alg, init, ropts)
		if l.obsv != nil {
			l.ring.SetObserver(l.obsv, core.HasToken)
		}
	} else {
		l.eng = runtime.NewEngine[core.State](alg, init, ropts)
		if l.obsv != nil {
			l.eng.SetObserver(l.obsv, core.HasToken)
		}
	}
	return l
}

// Observer returns the installed instrumentation hub, or nil.
func (l *LiveRing) Observer() *Observer { return l.obsv }

// OnPrivilege installs an application callback invoked (concurrently,
// from node goroutines or engine workers) whenever a node's privilege
// changes. Must be called before Start.
func (l *LiveRing) OnPrivilege(cb func(node int, privileged bool)) {
	if l.ring != nil {
		l.ring.SetPrivilegeCallback(core.HasToken, cb)
		return
	}
	l.eng.SetPrivilegeCallback(core.HasToken, cb)
}

// Start launches the ring.
func (l *LiveRing) Start() {
	if l.ring != nil {
		l.ring.Start()
		return
	}
	l.eng.Start()
}

// Stop halts the backend and waits for its goroutines to drain.
func (l *LiveRing) Stop() {
	if l.ring != nil {
		l.ring.Stop()
		return
	}
	l.eng.Stop()
}

// Inject overwrites a node's local state at runtime — a live transient
// fault the ring must (and will) self-stabilize away from.
func (l *LiveRing) Inject(node int, s State) bool {
	if l.ring != nil {
		return l.ring.Inject(node, s)
	}
	return l.eng.Inject(node, s)
}

// Census returns the current number of privileged nodes. On the sharded
// engine with an observer or privilege callback installed this reads the
// shard-local census accumulators (O(workers)); otherwise it falls back
// to the O(n) node scan.
func (l *LiveRing) Census() int {
	if l.ring != nil {
		return l.ring.Census(core.HasToken)
	}
	if c, ok := l.eng.TrackedCensus(); ok {
		return c
	}
	return l.eng.Census(core.HasToken)
}

// Holders returns the ids of currently privileged nodes.
func (l *LiveRing) Holders() []int {
	if l.ring != nil {
		return l.ring.Holders(core.HasToken)
	}
	return l.eng.Holders(core.HasToken)
}

// RuleExecutions returns total rule executions so far.
func (l *LiveRing) RuleExecutions() int64 {
	if l.ring != nil {
		return l.ring.RuleExecutions()
	}
	return l.eng.RuleExecutions()
}

// WatchCensus samples the census every interval for duration d and
// returns the observed distribution.
func (l *LiveRing) WatchCensus(d, interval time.Duration) runtime.CensusStats {
	if l.ring != nil {
		return l.ring.WatchCensus(core.HasToken, d, interval)
	}
	return l.eng.WatchCensus(core.HasToken, d, interval)
}

// Runtime exposes the underlying goroutine ring for advanced use. It is
// nil unless the ring was built with WithLegacyRuntime; the default
// backend is exposed by Engine.
func (l *LiveRing) Runtime() *runtime.Ring[core.State] { return l.ring }

// Engine exposes the underlying sharded event engine for advanced use
// (RunUntil fast-virtual execution, taps, snapshots). It is nil when the
// ring was built with WithLegacyRuntime.
func (l *LiveRing) Engine() *runtime.Engine[core.State] { return l.eng }

// ---------------------------------------------------------------------------
// Baseline: Dijkstra's SSToken
// ---------------------------------------------------------------------------

// DijkstraState is the local state of Dijkstra's K-state ring.
type DijkstraState = dijkstra.State

// NewSSToken returns Dijkstra's K-state token ring (the paper's base
// algorithm and the Figure 11 baseline).
func NewSSToken(n, k int) *dijkstra.Algorithm { return dijkstra.New(n, k) }

// DijkstraHasToken is SSToken's token condition, for Census/Holders use.
var DijkstraHasToken = dijkstra.HasToken

// ---------------------------------------------------------------------------
// TCP deployment
// ---------------------------------------------------------------------------

// TCPRing is an SSRmin ring deployed over real TCP sockets (loopback, one
// node per goroutine set, newline-delimited JSON announcements) — the
// closest analogue of the paper's sensor-network deployment. See
// internal/netring for wiring nodes across processes or machines.
type TCPRing struct {
	ring *netring.Ring
}

// StartTCPRing launches an n-node SSRmin ring on loopback TCP with
// ephemeral ports (K = n+1) and the given announcement refresh interval.
func StartTCPRing(n int, refresh time.Duration) (*TCPRing, error) {
	r, err := netring.StartLocalRing(n, n+1, refresh)
	if err != nil {
		return nil, err
	}
	return &TCPRing{ring: r}, nil
}

// Stop terminates every node.
func (t *TCPRing) Stop() { t.ring.Stop() }

// Census returns the number of privileged nodes.
func (t *TCPRing) Census() int { return t.ring.Census() }

// Holders returns the privileged node indices.
func (t *TCPRing) Holders() []int { return t.ring.Holders() }

// RuleExecutions sums rule executions across the ring.
func (t *TCPRing) RuleExecutions() int { return t.ring.RuleExecutions() }

// Inject overwrites node i's state — a live transient fault.
func (t *TCPRing) Inject(node int, s State) { t.ring.Nodes[node].Inject(s) }

// Addrs returns each node's TCP listen address.
func (t *TCPRing) Addrs() []string {
	out := make([]string, len(t.ring.Nodes))
	for i, n := range t.ring.Nodes {
		out[i] = n.Addr()
	}
	return out
}
