// Package ssrmin is a from-scratch Go implementation of the
// self-stabilizing token circulation with graceful handover of
// Kakugawa, Kamei and Katayama ("A self-stabilizing token circulation with
// graceful handover on bidirectional ring networks", IJNC 12(1), 2022;
// IPDPSW 2021).
//
// SSRmin solves the mutual inclusion problem — at least one process is
// privileged at every instant — on bidirectional rings, by circulating a
// primary and a secondary token like an inchworm on top of Dijkstra's
// K-state ring. Its token predicates are model gap tolerant: after the
// cached sensornet transform (CST), the guarantee "1 ≤ privileged ≤ 2"
// survives in asynchronous message-passing networks, where plain token
// rings pass through instants with no token at all.
//
// The package offers four execution vehicles over one algorithm core:
//
//   - Simulation: the state-reading/composite-atomicity model of the
//     paper's proofs, under pluggable daemons (schedulers).
//   - MPSimulation: a deterministic discrete-event simulation of the
//     CST-transformed algorithm over lossy, delayed message links.
//   - LiveRing: a real concurrent deployment — one goroutine per node,
//     channels as links — for wall-clock applications such as the
//     camera-network examples.
//   - TCPRing: the algorithm as real network services over TCP sockets
//     (see also cmd/ssrmin-node for multi-process/multi-machine rings).
//
// MultiSimulation composes m independent instances into a (m, 2m)-
// critical-section system. The exhaustive model checker (used by the test
// suite) and the experiment harness that regenerates every figure of the
// paper live in cmd/ and internal/.
package ssrmin

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"ssrmin/internal/core"
	"ssrmin/internal/cst"
	"ssrmin/internal/daemon"
	"ssrmin/internal/dijkstra"
	"ssrmin/internal/msgnet"
	"ssrmin/internal/netring"
	"ssrmin/internal/runtime"
	"ssrmin/internal/statemodel"
	"ssrmin/internal/trace"
	"ssrmin/internal/verify"
)

// State is the local state of an SSRmin process: the Dijkstra counter X
// and the rts/tra handshake bits.
type State = core.State

// Config is a configuration: one State per process.
type Config = statemodel.Config[core.State]

// View is a process's read set: its own and its ring neighbors' states.
type View = statemodel.View[core.State]

// Move identifies a process executing a rule.
type Move = statemodel.Move

// Algorithm is an SSRmin instance (ring size n, counter space K).
type Algorithm = core.Algorithm

// Daemon schedules enabled processes; see the With*Daemon options.
type Daemon = statemodel.Daemon

// TokenCount is a census of primary/secondary/privileged processes.
type TokenCount = verify.TokenCount

// New returns an SSRmin algorithm instance with n ≥ 3 processes and
// counter space K > n.
func New(n, k int) *Algorithm { return core.New(n, k) }

// HasPrimary, HasSecondary and HasToken are the token conditions of
// Algorithm 3, re-exported for use with the Holders/Census APIs.
var (
	HasPrimary   = core.HasPrimary
	HasSecondary = core.HasSecondary
	HasToken     = core.HasToken
)

// RandomConfig draws a uniformly random configuration for a.
func RandomConfig(a *Algorithm, rng *rand.Rand) Config {
	cfg := make(Config, a.N())
	for i := range cfg {
		cfg[i] = State{X: rng.Intn(a.K()), RTS: rng.Intn(2) == 1, TRA: rng.Intn(2) == 1}
	}
	return cfg
}

// Count returns the token census of cfg.
func Count(cfg Config) TokenCount { return verify.Count(cfg) }

// ---------------------------------------------------------------------------
// State-reading simulation
// ---------------------------------------------------------------------------

// Simulation runs SSRmin in the state-reading model under a daemon.
type Simulation struct {
	alg *Algorithm
	sim *statemodel.Simulator[core.State]
	rec *trace.Recorder[core.State]
}

// SimOption configures NewSimulation.
type SimOption func(*simConfig)

type simConfig struct {
	k       int
	daemon  Daemon
	initial Config
	record  bool
}

// WithK sets the counter space (default n+1).
func WithK(k int) SimOption { return func(c *simConfig) { c.k = k } }

// WithDaemon installs a custom scheduler.
func WithDaemon(d Daemon) SimOption { return func(c *simConfig) { c.daemon = d } }

// WithInitial sets the initial configuration (default: the canonical
// legitimate configuration with both tokens at P0).
func WithInitial(cfg Config) SimOption {
	return func(c *simConfig) { c.initial = cfg.Clone() }
}

// WithRecording enables trace capture for RenderTrace/RenderTokens.
func WithRecording() SimOption { return func(c *simConfig) { c.record = true } }

// CentralDaemon activates one random enabled process per step.
func CentralDaemon(seed int64) Daemon {
	return daemon.NewCentralRandom(rand.New(rand.NewSource(seed)))
}

// SynchronousDaemon activates every enabled process each step.
func SynchronousDaemon() Daemon { return daemon.Synchronous{} }

// DistributedDaemon activates each enabled process with probability p.
func DistributedDaemon(seed int64, p float64) Daemon {
	return daemon.NewRandomSubset(rand.New(rand.NewSource(seed)), p)
}

// AdversarialQuietDaemon prefers the non-Dijkstra rules (1, 3, 5),
// delaying real token progress as long as Lemma 5 permits.
func AdversarialQuietDaemon(seed int64) Daemon {
	return daemon.NewRuleBiased(rand.New(rand.NewSource(seed)),
		core.RuleReadySecondary, core.RuleRecvSecondary, core.RuleFixNoG)
}

// StarvingDaemon never schedules the victim processes unless they are the
// only enabled ones — an unfairness witness.
func StarvingDaemon(seed int64, victims ...int) Daemon {
	return daemon.NewStarver(rand.New(rand.NewSource(seed)), victims...)
}

// NewSimulation builds a state-reading simulation of SSRmin with n
// processes. Defaults: K = n+1, a seeded central daemon, the canonical
// legitimate initial configuration.
func NewSimulation(n int, opts ...SimOption) *Simulation {
	c := simConfig{k: n + 1}
	for _, o := range opts {
		o(&c)
	}
	alg := core.New(n, c.k)
	if c.daemon == nil {
		c.daemon = CentralDaemon(1)
	}
	if c.initial == nil {
		c.initial = alg.InitialLegitimate()
	}
	s := &Simulation{alg: alg, sim: statemodel.NewSimulator[core.State](alg, c.daemon, c.initial)}
	if c.record {
		s.rec = &trace.Recorder[core.State]{}
		s.rec.Attach(s.sim)
	}
	return s
}

// Algorithm returns the underlying algorithm instance.
func (s *Simulation) Algorithm() *Algorithm { return s.alg }

// Config returns a copy of the current configuration.
func (s *Simulation) Config() Config { return s.sim.Config() }

// Steps returns the number of transitions executed.
func (s *Simulation) Steps() int { return s.sim.Steps() }

// Enabled returns the currently enabled moves.
func (s *Simulation) Enabled() []Move { return s.sim.Enabled() }

// Step performs one transition; ok is false on deadlock (which Lemma 4
// rules out for SSRmin).
func (s *Simulation) Step() (moves []Move, ok bool) { return s.sim.Step() }

// Run performs up to maxSteps transitions and returns how many ran.
func (s *Simulation) Run(maxSteps int) int { return s.sim.Run(maxSteps) }

// RunUntilLegitimate steps until the configuration is legitimate
// (Definition 1) or maxSteps transitions elapsed; it returns the number of
// steps taken and whether legitimacy was reached.
func (s *Simulation) RunUntilLegitimate(maxSteps int) (int, bool) {
	return s.sim.RunUntil(s.alg.Legitimate, maxSteps)
}

// Legitimate reports whether the current configuration is legitimate.
func (s *Simulation) Legitimate() bool { return s.alg.Legitimate(s.sim.Config()) }

// Holders returns the indices of the currently privileged processes.
func (s *Simulation) Holders() []int { return s.alg.TokenHolders(s.sim.Config()) }

// Census returns the current token census.
func (s *Simulation) Census() TokenCount { return verify.Count(s.sim.Config()) }

// RenderTrace writes the recorded execution as a Figure-4 style table.
// The simulation must have been created WithRecording.
func (s *Simulation) RenderTrace(w io.Writer) error {
	if s.rec == nil {
		return fmt.Errorf("ssrmin: simulation was not created WithRecording")
	}
	return trace.RenderSSRmin(w, s.rec)
}

// RenderTokens writes the recorded execution as a Figure-1 style table
// (token positions only).
func (s *Simulation) RenderTokens(w io.Writer) error {
	if s.rec == nil {
		return fmt.Errorf("ssrmin: simulation was not created WithRecording")
	}
	return trace.RenderTokens(w, s.rec)
}

// WriteCSV exports the recorded execution as CSV.
func (s *Simulation) WriteCSV(w io.Writer) error {
	if s.rec == nil {
		return fmt.Errorf("ssrmin: simulation was not created WithRecording")
	}
	return trace.WriteCSV(w, s.rec)
}

// ---------------------------------------------------------------------------
// Message-passing simulation (CST over a discrete-event network)
// ---------------------------------------------------------------------------

// MPOptions configures a message-passing simulation.
type MPOptions struct {
	// K is the counter space (default n+1).
	K int
	// Delay is the base link delay in simulated seconds (default 0.01).
	Delay float64
	// Jitter is the uniform extra delay bound (default Delay/5).
	Jitter float64
	// LossProb is the per-message loss probability.
	LossProb float64
	// Refresh is the periodic announcement interval (default 5×Delay).
	Refresh float64
	// Hold is the critical-section dwell before executing an enabled rule.
	Hold float64
	// Seed drives all randomness.
	Seed int64
	// Initial is the starting configuration (default: canonical
	// legitimate).
	Initial Config
	// CoherentCaches seeds caches with true neighbor states (default
	// true). Set false together with Initial for Theorem-4 style runs.
	IncoherentCaches bool
}

// MPSimulation is a CST-transformed SSRmin ring over the discrete-event
// network, with a token-census timeline attached.
type MPSimulation struct {
	alg  *Algorithm
	ring *cst.Ring[core.State]
	tl   verify.Timeline
	done bool
}

// NewMPSimulation builds the message-passing simulation.
func NewMPSimulation(n int, opts MPOptions) *MPSimulation {
	if opts.K == 0 {
		opts.K = n + 1
	}
	if opts.Delay == 0 {
		opts.Delay = 0.01
	}
	if opts.Jitter == 0 {
		opts.Jitter = opts.Delay / 5
	}
	if opts.Refresh == 0 {
		opts.Refresh = 5 * opts.Delay
	}
	alg := core.New(n, opts.K)
	init := opts.Initial
	if init == nil {
		init = alg.InitialLegitimate()
	}
	ring := cst.NewRing[core.State](alg, init, cst.Options[core.State]{
		Link: msgnet.LinkParams{
			Delay:    msgnet.Time(opts.Delay),
			Jitter:   msgnet.Time(opts.Jitter),
			LossProb: opts.LossProb,
		},
		Refresh:        msgnet.Time(opts.Refresh),
		Hold:           msgnet.Time(opts.Hold),
		Seed:           opts.Seed,
		CoherentCaches: !opts.IncoherentCaches,
		RandomState: func(rng *rand.Rand) State {
			return State{X: rng.Intn(opts.K), RTS: rng.Intn(2) == 1, TRA: rng.Intn(2) == 1}
		},
	})
	m := &MPSimulation{alg: alg, ring: ring}
	ring.Net.Observer = func(now msgnet.Time) {
		m.tl.Record(float64(now), ring.Census(core.HasToken))
	}
	return m
}

// Run advances simulated time to the given horizon (seconds).
func (m *MPSimulation) Run(until float64) {
	m.ring.Net.Run(msgnet.Time(until))
}

// Timeline closes and returns the census timeline. The simulation must not
// be advanced afterwards.
func (m *MPSimulation) Timeline() *verify.Timeline {
	if !m.done {
		m.tl.Close(float64(m.ring.Net.Now()))
		m.done = true
	}
	return &m.tl
}

// Census returns the current number of privileged nodes (as perceived
// through the nodes' caches).
func (m *MPSimulation) Census() int { return m.ring.Census(core.HasToken) }

// Holders returns the ids of currently privileged nodes.
func (m *MPSimulation) Holders() []int { return m.ring.Holders(core.HasToken) }

// States returns the vector of true node states.
func (m *MPSimulation) States() Config { return m.ring.States() }

// Coherent reports whether all caches match the neighbors' true states.
func (m *MPSimulation) Coherent() bool { return m.ring.Coherent() }

// RuleExecutions returns the total number of rules executed.
func (m *MPSimulation) RuleExecutions() int { return m.ring.RuleExecutions() }

// MessagesSent returns the number of messages that entered a link.
func (m *MPSimulation) MessagesSent() int { return m.ring.Net.Stats().Sent }

// Ring exposes the underlying CST ring for advanced use (fault injection,
// custom observers).
func (m *MPSimulation) Ring() *cst.Ring[core.State] { return m.ring }

// ---------------------------------------------------------------------------
// Live goroutine/channel deployment
// ---------------------------------------------------------------------------

// LiveOptions configures a live ring.
type LiveOptions struct {
	// K is the counter space (default n+1).
	K int
	// Delay, Jitter, LossProb and Refresh mirror MPOptions in wall-clock
	// time. Defaults: 1ms delay, 200µs jitter, no loss, 5ms refresh.
	Delay, Jitter, Refresh time.Duration
	LossProb               float64
	// Seed drives all randomness.
	Seed int64
	// Initial is the starting configuration (default canonical
	// legitimate); IncoherentCaches seeds caches arbitrarily.
	Initial          Config
	IncoherentCaches bool
}

// LiveRing is a running SSRmin deployment: one goroutine per node, Go
// channels as one-message-per-direction links.
type LiveRing struct {
	alg  *Algorithm
	ring *runtime.Ring[core.State]
}

// NewLiveRing builds (but does not start) a live ring.
func NewLiveRing(n int, opts LiveOptions) *LiveRing {
	if opts.K == 0 {
		opts.K = n + 1
	}
	if opts.Delay == 0 {
		opts.Delay = time.Millisecond
	}
	if opts.Jitter == 0 {
		opts.Jitter = 200 * time.Microsecond
	}
	if opts.Refresh == 0 {
		opts.Refresh = 5 * time.Millisecond
	}
	alg := core.New(n, opts.K)
	init := opts.Initial
	if init == nil {
		init = alg.InitialLegitimate()
	}
	ropts := runtime.Options[core.State]{
		Delay:          opts.Delay,
		Jitter:         opts.Jitter,
		LossProb:       opts.LossProb,
		Refresh:        opts.Refresh,
		Seed:           opts.Seed,
		CoherentCaches: !opts.IncoherentCaches,
	}
	if opts.IncoherentCaches {
		ropts.RandomState = func(rng *rand.Rand) State {
			return State{X: rng.Intn(opts.K), RTS: rng.Intn(2) == 1, TRA: rng.Intn(2) == 1}
		}
	}
	return &LiveRing{alg: alg, ring: runtime.NewRing[core.State](alg, init, ropts)}
}

// OnPrivilege installs an application callback invoked (from node
// goroutines) whenever a node's privilege changes. Must be called before
// Start.
func (l *LiveRing) OnPrivilege(cb func(node int, privileged bool)) {
	l.ring.SetPrivilegeCallback(core.HasToken, cb)
}

// Start launches the ring.
func (l *LiveRing) Start() { l.ring.Start() }

// Stop terminates all goroutines and waits for them.
func (l *LiveRing) Stop() { l.ring.Stop() }

// Inject overwrites a node's local state at runtime — a live transient
// fault the ring must (and will) self-stabilize away from.
func (l *LiveRing) Inject(node int, s State) bool { return l.ring.Inject(node, s) }

// Census returns the current number of privileged nodes.
func (l *LiveRing) Census() int { return l.ring.Census(core.HasToken) }

// Holders returns the ids of currently privileged nodes.
func (l *LiveRing) Holders() []int { return l.ring.Holders(core.HasToken) }

// RuleExecutions returns total rule executions so far.
func (l *LiveRing) RuleExecutions() int64 { return l.ring.RuleExecutions() }

// WatchCensus samples the census every interval for duration d and
// returns the observed distribution.
func (l *LiveRing) WatchCensus(d, interval time.Duration) runtime.CensusStats {
	return l.ring.WatchCensus(core.HasToken, d, interval)
}

// Runtime exposes the underlying generic ring for advanced use.
func (l *LiveRing) Runtime() *runtime.Ring[core.State] { return l.ring }

// ---------------------------------------------------------------------------
// Baseline: Dijkstra's SSToken
// ---------------------------------------------------------------------------

// DijkstraState is the local state of Dijkstra's K-state ring.
type DijkstraState = dijkstra.State

// NewSSToken returns Dijkstra's K-state token ring (the paper's base
// algorithm and the Figure 11 baseline).
func NewSSToken(n, k int) *dijkstra.Algorithm { return dijkstra.New(n, k) }

// DijkstraHasToken is SSToken's token condition, for Census/Holders use.
var DijkstraHasToken = dijkstra.HasToken

// ---------------------------------------------------------------------------
// TCP deployment
// ---------------------------------------------------------------------------

// TCPRing is an SSRmin ring deployed over real TCP sockets (loopback, one
// node per goroutine set, newline-delimited JSON announcements) — the
// closest analogue of the paper's sensor-network deployment. See
// internal/netring for wiring nodes across processes or machines.
type TCPRing struct {
	ring *netring.Ring
}

// StartTCPRing launches an n-node SSRmin ring on loopback TCP with
// ephemeral ports (K = n+1) and the given announcement refresh interval.
func StartTCPRing(n int, refresh time.Duration) (*TCPRing, error) {
	r, err := netring.StartLocalRing(n, n+1, refresh)
	if err != nil {
		return nil, err
	}
	return &TCPRing{ring: r}, nil
}

// Stop terminates every node.
func (t *TCPRing) Stop() { t.ring.Stop() }

// Census returns the number of privileged nodes.
func (t *TCPRing) Census() int { return t.ring.Census() }

// Holders returns the privileged node indices.
func (t *TCPRing) Holders() []int { return t.ring.Holders() }

// RuleExecutions sums rule executions across the ring.
func (t *TCPRing) RuleExecutions() int { return t.ring.RuleExecutions() }

// Inject overwrites node i's state — a live transient fault.
func (t *TCPRing) Inject(node int, s State) { t.ring.Nodes[node].Inject(s) }

// Addrs returns each node's TCP listen address.
func (t *TCPRing) Addrs() []string {
	out := make([]string, len(t.ring.Nodes))
	for i, n := range t.ring.Nodes {
		out[i] = n.Addr()
	}
	return out
}
