// Cameranet is the paper's motivating application: a self-organizing
// multi-node security-camera system with continuous observation. Each
// station runs one SSRmin process as a real goroutine; a station actively
// monitors exactly while it is privileged (holds a token), draining its
// battery, and recharges while idle. Mutual inclusion guarantees that at
// every instant at least one camera is watching — there is no coverage
// gap — while the rotation keeps every battery alive.
//
// Run: go run ./examples/cameranet [-stations 6] [-seconds 3]
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	"ssrmin"
	"ssrmin/internal/inclusion"
	"ssrmin/internal/verify"
)

func main() {
	var (
		stations = flag.Int("stations", 6, "number of camera stations (≥ 3)")
		seconds  = flag.Float64("seconds", 3, "wall-clock seconds to run")
	)
	flag.Parse()

	fmt.Printf("deploying %d camera stations on a bidirectional ring...\n", *stations)

	ring := ssrmin.NewLiveRing(*stations,
		ssrmin.WithDelay(time.Millisecond),
		ssrmin.WithJitter(300*time.Microsecond),
		ssrmin.WithRefresh(4*time.Millisecond),
		ssrmin.WithSeed(time.Now().UnixNano()),
	)

	tracker := inclusion.NewTracker(*stations)
	start := time.Now()
	var mu sync.Mutex // serializes battery bookkeeping
	ring.OnPrivilege(func(node int, privileged bool) {
		mu.Lock()
		tracker.Set(node, privileged, time.Since(start).Seconds())
		mu.Unlock()
	})

	ring.Start()
	defer ring.Stop()

	// Battery model: active stations drain 5 units/s, idle ones harvest
	// 1.5 units/s. With n ≥ 3 stations and at most 2 active, the fleet is
	// sustainable whenever (n-2)·1.5 > 2·5/… — here we just watch it.
	energy := inclusion.NewEnergyModel(*stations, 100, 5, 1.5)
	tick := 10 * time.Millisecond
	deadline := time.Now().Add(time.Duration(*seconds * float64(time.Second)))
	active := make([]bool, *stations)
	for time.Now().Before(deadline) {
		time.Sleep(tick)
		mu.Lock()
		for i := range active {
			active[i] = false
		}
		for _, h := range tracker.ActiveSet() {
			active[h] = true
		}
		mu.Unlock()
		energy.Elapse(tick.Seconds(), active)
	}
	end := time.Since(start).Seconds()

	// Report.
	fmt.Printf("\nran %.1fs; %d privilege rotations executed\n", end, ring.RuleExecutions())

	gaps := tracker.CoverageGaps(0.05, end) // skip the 50ms boot blip
	fmt.Printf("coverage gaps after boot: %d", len(gaps))
	total := 0.0
	for _, g := range gaps {
		total += g.Len()
	}
	fmt.Printf(" (total %.1fms)\n", 1000*total)
	if len(gaps) == 0 {
		fmt.Println("→ CONTINUOUS OBSERVATION: at every instant some camera was active.")
	} else {
		fmt.Println("→ unexpected gaps; see the paper's Theorem 3 — this should not happen")
		os.Exit(1)
	}

	duty := tracker.DutyCycles(0, end)
	duties := append([]float64(nil), duty...)
	rot := tracker.Rotation(0.05, end)
	fmt.Println("\nstation  duty cycle  battery")
	levels := energy.Levels()
	for i, d := range duty {
		bar := int(d * 40)
		fmt.Printf("cam-%-3d  %6.1f%%     %5.1f  %s\n", i, 100*d, levels[i], bars(bar))
	}
	fmt.Printf("\nminimum battery level: %.1f/100 (never depleted: %v)\n",
		energy.MinLevel(), !energy.Depleted())
	fmt.Printf("fairness (Jain index of duty cycles): %.3f (1.0 = perfectly even)\n",
		verify.JainFairness(duties))
	fmt.Printf("rotation: mean gap between a station's turns %.0fms, max %.0fms\n",
		1000*rot.MeanGap, 1000*rot.MaxGap)
	fmt.Println("each station monitors in turn; the rest recharge — the duty cycle")
	fmt.Printf("per station is between 1/n = %.0f%% and 2/n = %.0f%% (1–2 tokens over %d stations).\n",
		100/float64(*stations), 100*2/float64(*stations), *stations)
}

func bars(n int) string {
	out := ""
	for i := 0; i < n; i++ {
		out += "#"
	}
	return out
}
