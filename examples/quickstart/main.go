// Quickstart: build a five-process SSRmin ring, watch the two tokens walk
// it like an inchworm, then start from garbage and watch it self-stabilize.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"math/rand"
	"os"

	"ssrmin"
)

func main() {
	// 1. A legitimate ring: trace fifteen steps (the execution of the
	//    paper's Figure 4, with x starting at 0).
	fmt.Println("=== SSRmin on 5 processes, legitimate start ===")
	sim := ssrmin.NewSimulation(5, ssrmin.WithRecording())
	sim.Run(15)
	if err := sim.RenderTrace(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println()
	fmt.Println("Cells are x.rts.tra; P = primary token, S = secondary token;")
	fmt.Println("/r is the rule the process executes next. At every step the")
	fmt.Println("number of privileged processes is 1 or 2, and they are neighbors.")

	// 2. Self-stabilization: arbitrary initial states, adversarial
	//    scheduling — the ring still converges to the legitimate regime.
	fmt.Println("\n=== Self-stabilization from a random configuration ===")
	alg := ssrmin.New(7, 8)
	garbage := ssrmin.RandomConfig(alg, rand.New(rand.NewSource(42)))
	fmt.Printf("initial configuration: %v\n", garbage)

	sim2 := ssrmin.NewSimulation(7,
		ssrmin.WithK(8),
		ssrmin.WithInitial(garbage),
		ssrmin.WithDaemon(ssrmin.AdversarialQuietDaemon(7)),
	)
	steps, ok := sim2.RunUntilLegitimate(alg.ConvergenceStepBound())
	if !ok {
		fmt.Println("BUG: did not converge (Theorem 2 says it must)")
		os.Exit(1)
	}
	fmt.Printf("converged after %d steps (O(n²) budget: %d)\n", steps, alg.ConvergenceStepBound())
	fmt.Printf("configuration: %v\n", sim2.Config())
	fmt.Printf("census: %+v, holders: %v\n", sim2.Census(), sim2.Holders())

	// 3. The same algorithm in the message-passing model: the census
	//    stays within 1..2 at every instant (model gap tolerance).
	fmt.Println("\n=== Message-passing model (CST transform) ===")
	mp := ssrmin.NewMPSimulation(5, ssrmin.WithSeed(1))
	mp.Run(10)
	tl := mp.Timeline()
	fmt.Printf("simulated 10s with 10ms link delay: census range [%d, %d]\n",
		tl.MinCount(), tl.MaxCount())
	for _, c := range tl.Counts() {
		fmt.Printf("  %d holder(s): %5.1f%% of the time\n", c, 100*tl.Fraction(c))
	}
	fmt.Println("no instant without a privileged node — the handover is graceful.")
}
