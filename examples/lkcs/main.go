// Lkcs demonstrates the (ℓ,k)-critical-section generalization the paper
// situates itself in (reference [9]): composing m independent SSRmin
// instances over one ring yields a system in which, at every instant,
// between m and 2m privilege grants exist — a (m, 2m)-critical-section
// solution. With m = 2 on six stations, for example, the fleet always has
// 2–4 active grants: enough for one station to record while another
// uploads, with graceful rotation of both roles.
//
// Run: go run ./examples/lkcs [-m 2] [-n 6] [-steps 60]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ssrmin"
)

func main() {
	var (
		m     = flag.Int("m", 2, "number of composed SSRmin instances (1..4)")
		n     = flag.Int("n", 6, "ring size (≥ 3)")
		steps = flag.Int("steps", 60, "transitions to trace")
	)
	flag.Parse()

	sim := ssrmin.NewMultiSimulation(*n, *m, ssrmin.DistributedDaemon(1, 0.5))
	fmt.Printf("(%d,%d)-critical section: %d SSRmin instances on %d processes\n\n",
		*m, 2**m, *m, *n)
	fmt.Printf("%-5s %-14s %-8s %s\n", "step", "grants", "holders", "per-instance privilege map")

	minG, maxG := 1<<30, -1
	for s := 0; s <= *steps; s++ {
		g := sim.Grants()
		if g < minG {
			minG = g
		}
		if g > maxG {
			maxG = g
		}
		if s%5 == 0 {
			fmt.Printf("%-5d %-14s %-12s %s\n", s,
				fmt.Sprintf("%d ∈ [%d,%d]", g, *m, 2**m), fmt.Sprint(sim.Holders()), lanes(sim, *n))
		}
		if !sim.Step() {
			fmt.Fprintln(os.Stderr, "deadlock (impossible for SSRmin)")
			os.Exit(1)
		}
	}

	fmt.Printf("\nobserved grants over %d steps: %d..%d (spec: %d..%d)\n",
		*steps, minG, maxG, *m, 2**m)
	if minG >= *m && maxG <= 2**m {
		fmt.Println("→ the (m,2m)-critical-section bound held at every step.")
	} else {
		fmt.Println("→ bound violated — unexpected.")
		os.Exit(1)
	}
}

// lanes draws one character lane per instance: the processes privileged in
// that instance are marked with the instance digit.
func lanes(sim *ssrmin.MultiSimulation, n int) string {
	var out []string
	for j := 0; j < sim.M(); j++ {
		lane := make([]byte, n)
		for i := range lane {
			lane[i] = '.'
		}
		for _, h := range sim.HoldersOf(j) {
			lane[h] = byte('A' + j)
		}
		out = append(out, string(lane))
	}
	return strings.Join(out, " | ")
}
