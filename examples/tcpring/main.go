// Tcpring deploys SSRmin over real TCP sockets on loopback: every node is
// an independent network service exchanging JSON state announcements, so
// the only shared substrate is the wire — the repository's closest
// analogue to the paper's wireless sensor network. The demo starts the
// ring, watches the privilege circulate, injects live faults over the
// running sockets, and shows coverage surviving all of it.
//
// Run: go run ./examples/tcpring [-n 5] [-seconds 3]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ssrmin"
)

func main() {
	var (
		n       = flag.Int("n", 5, "ring size (≥ 3)")
		seconds = flag.Float64("seconds", 3, "observation window")
	)
	flag.Parse()

	ring, err := ssrmin.StartTCPRing(*n, 10*time.Millisecond)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer ring.Stop()

	fmt.Printf("started %d SSRmin nodes over TCP:\n", *n)
	for i, addr := range ring.Addrs() {
		fmt.Printf("  node %d listening on %s\n", i, addr)
	}

	// Let the first announcements land, then sample.
	time.Sleep(100 * time.Millisecond)
	deadline := time.Now().Add(time.Duration(*seconds * float64(time.Second)))
	visited := map[int]bool{}
	min, max, samples := 1<<30, -1, 0
	faultAt := time.Now().Add(time.Duration(*seconds * float64(time.Second) / 2))
	faulted := false
	for time.Now().Before(deadline) {
		c := ring.Census()
		samples++
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
		for _, h := range ring.Holders() {
			visited[h] = true
		}
		if !faulted && time.Now().After(faultAt) {
			faulted = true
			fmt.Println("\ninjecting live faults into nodes 1 and 3 over the running sockets...")
			ring.Inject(1, ssrmin.State{X: 2, RTS: true, TRA: true})
			ring.Inject(3, ssrmin.State{X: 4, TRA: true})
			// Skip the recovery window in the census accounting.
			time.Sleep(300 * time.Millisecond)
		}
		time.Sleep(300 * time.Microsecond)
	}

	fmt.Printf("\n%d census samples over TCP: range [%d, %d]\n", samples, min, max)
	fmt.Printf("privilege visited %d/%d nodes; %d rule executions\n",
		len(visited), *n, ring.RuleExecutions())
	if min >= 1 && max <= 2 && len(visited) == *n {
		fmt.Println("→ mutual inclusion with graceful handover, on real sockets,")
		fmt.Println("  through live fault injection — no coordinator anywhere.")
	} else {
		fmt.Println("→ unexpected census excursion (fault recovery window too short?)")
	}
}
