// Faultdemo exercises self-stabilization: a running SSRmin ring (in the
// deterministic message-passing simulation) is repeatedly hit with
// transient faults — corrupted process states, corrupted neighbor caches,
// and bursts of 100% message loss — and each time returns on its own to
// the legitimate 1–2 token regime. No reset, no coordinator.
//
// Run: go run ./examples/faultdemo [-rounds 5] [-seed 7]
package main

import (
	"flag"
	"fmt"
	"math/rand"

	"ssrmin"
	"ssrmin/internal/core"
	"ssrmin/internal/fault"
	"ssrmin/internal/msgnet"
)

func main() {
	var (
		rounds = flag.Int("rounds", 5, "fault rounds to inject")
		seed   = flag.Int64("seed", 7, "random seed")
	)
	flag.Parse()

	const n, k = 6, 8
	m := ssrmin.NewMPSimulation(n, ssrmin.WithK(k), ssrmin.WithSeed(*seed))
	inj := fault.NewInjector(*seed)
	draw := func(rng *rand.Rand) core.State {
		return core.State{X: rng.Intn(k), RTS: rng.Intn(2) == 1, TRA: rng.Intn(2) == 1}
	}

	fmt.Printf("SSRmin ring, n=%d K=%d, 10ms links, in the message-passing model\n\n", n, k)
	m.Run(2)
	fmt.Printf("t=%6.2fs  booted; census=%d holders=%v\n", now(m), m.Census(), m.Holders())

	for round := 1; round <= *rounds; round++ {
		// Inject: corrupt two process states and two caches.
		hit := fault.CorruptStates[core.State](inj, m.Ring(), 2, draw)
		fault.CorruptCaches[core.State](inj, m.Ring(), 2, draw)
		fmt.Printf("\nround %d: corrupted states of processes %v and two caches\n", round, hit)
		fmt.Printf("t=%6.2fs  census immediately after fault: %d\n", now(m), m.Census())

		// Watch until the census is back in [1,2] and stays there for 5
		// simulated seconds.
		recoveredAt := -1.0
		lastBad := now(m)
		m.Ring().Net.Observer = func(t msgnet.Time) {
			c := m.Ring().Census(core.HasToken)
			if c < 1 || c > 2 {
				lastBad = float64(t)
			}
		}
		deadline := now(m) + 30
		for now(m) < deadline {
			m.Run(now(m) + 1)
			if now(m)-lastBad >= 5 {
				recoveredAt = lastBad
				break
			}
		}
		m.Ring().Net.Observer = nil
		if recoveredAt < 0 {
			fmt.Printf("t=%6.2fs  NOT RECOVERED (unexpected — Theorem 4 violated?)\n", now(m))
			return
		}
		fmt.Printf("t=%6.2fs  recovered: census back in [1,2] since t=%.2fs; holders=%v\n",
			now(m), recoveredAt, m.Holders())
	}

	fmt.Printf("\nall %d fault rounds healed autonomously — self-stabilization in action.\n", *rounds)
	fmt.Printf("total rule executions: %d, messages sent: %d\n", m.RuleExecutions(), m.MessagesSent())
}

func now(m *ssrmin.MPSimulation) float64 { return float64(m.Ring().Net.Now()) }
