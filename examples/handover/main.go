// Handover contrasts the graceful handover of SSRmin with the naive
// handover of Dijkstra's token ring when both run in a real asynchronous
// message-passing deployment (goroutines + channels + delays): the naive
// ring goes dark between release and receipt of its token, SSRmin never
// does. This is the live, wall-clock version of Figures 11 and 13.
//
// Run: go run ./examples/handover [-ms 500]
package main

import (
	"flag"
	"fmt"
	"time"

	"ssrmin"
	"ssrmin/internal/dijkstra"
	"ssrmin/internal/runtime"
)

func main() {
	var ms = flag.Int("ms", 500, "observation window per algorithm (milliseconds)")
	flag.Parse()
	window := time.Duration(*ms) * time.Millisecond

	const n, k = 5, 6
	fmt.Printf("live ring, n=%d, 1ms links, sampling the privilege census every 100µs\n\n", n)

	// --- naive: Dijkstra SSToken through the same transform ---
	dalg := dijkstra.New(n, k)
	dring := runtime.NewRing[dijkstra.State](dalg, dalg.InitialLegitimate(), runtime.Options[dijkstra.State]{
		Delay:          time.Millisecond,
		Jitter:         300 * time.Microsecond,
		Refresh:        4 * time.Millisecond,
		Seed:           1,
		CoherentCaches: true,
	})
	dring.Start()
	dstats := dring.WatchCensus(dijkstra.HasToken, window, 100*time.Microsecond)
	dring.Stop()

	fmt.Println("Dijkstra SSToken (mutual exclusion only):")
	report(dstats)

	// --- graceful: SSRmin ---
	ring := ssrmin.NewLiveRing(n,
		ssrmin.WithDelay(time.Millisecond),
		ssrmin.WithJitter(300*time.Microsecond),
		ssrmin.WithRefresh(4*time.Millisecond),
		ssrmin.WithSeed(1),
	)
	ring.Start()
	stats := ring.WatchCensus(window, 100*time.Microsecond)
	ring.Stop()

	fmt.Println("\nSSRmin (mutual inclusion with graceful handover):")
	report(stats)

	switch {
	case dstats.Min > 0:
		fmt.Println("\n(unusual: the naive ring showed no gap in this short window — rerun)")
	case stats.Min >= 1 && stats.Max <= 2:
		fmt.Println("\n→ SSRmin never left the 1–2 holder regime; the naive token ring")
		fmt.Println("  was caught with zero holders. That difference is the graceful handover.")
	default:
		fmt.Println("\n→ unexpected SSRmin census excursion — see Theorem 3")
	}
}

func report(s runtime.CensusStats) {
	fmt.Printf("  samples: %d, census range [%d, %d], distinct holders: %d\n",
		s.Samples, s.Min, s.Max, s.DistinctHolders)
	for c := 0; c <= s.Max; c++ {
		if cnt, ok := s.At[c]; ok {
			fmt.Printf("    %d holder(s): %5.1f%% of samples\n", c, 100*float64(cnt)/float64(s.Samples))
		}
	}
}
