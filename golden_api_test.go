package ssrmin_test

// Golden pin of the public constructors' observable behavior across the
// options redesign: the same inputs — whether spelled with the legacy
// MPOptions/LiveOptions structs or the unified functional options — must
// produce bit-identical executions. The golden files were generated from
// the pre-redesign API (go test -run GoldenAPI -update) and must never
// change without a deliberate semantic break.

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ssrmin"
)

var update = flag.Bool("update", false, "rewrite golden files")

func golden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if string(want) != got {
		t.Errorf("%s mismatch.\ngot:\n%s\nwant:\n%s", name, got, want)
	}
}

// simTraceCSV runs a recorded 15-step default simulation and returns its
// CSV trace — the Figure 4 execution through the public API.
func simTraceCSV(t *testing.T, opts ...ssrmin.SimOption) string {
	t.Helper()
	sim := ssrmin.NewSimulation(5, opts...)
	sim.Run(15)
	var b strings.Builder
	if err := sim.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func TestGoldenAPISimulation(t *testing.T) {
	golden(t, "api_sim_default.csv", simTraceCSV(t, ssrmin.WithRecording()))

	alg := ssrmin.New(5, 7)
	init := ssrmin.RandomConfig(alg, rand.New(rand.NewSource(2)))
	golden(t, "api_sim_random.csv", simTraceCSV(t,
		ssrmin.WithK(7),
		ssrmin.WithDaemon(ssrmin.DistributedDaemon(3, 0.5)),
		ssrmin.WithInitial(init),
		ssrmin.WithRecording(),
	))
}

// mpSummary fingerprints a message-passing run: final states, census,
// rule executions and message statistics — everything seeded randomness
// flows into.
func mpSummary(m *ssrmin.MPSimulation) string {
	var b strings.Builder
	m.Run(5)
	fmt.Fprintf(&b, "states: %v\n", m.States())
	fmt.Fprintf(&b, "census: %d holders=%v coherent=%v\n", m.Census(), m.Holders(), m.Coherent())
	fmt.Fprintf(&b, "rules:  %d\n", m.RuleExecutions())
	fmt.Fprintf(&b, "sent:   %d\n", m.MessagesSent())
	tl := m.Timeline()
	fmt.Fprintf(&b, "span:   min=%d max=%d zero=%.6f\n", tl.MinCount(), tl.MaxCount(), tl.Duration(0))
	return b.String()
}

func TestGoldenAPIMPSimulation(t *testing.T) {
	golden(t, "api_mp_default.txt", mpSummary(ssrmin.NewMPSimulation(5, ssrmin.MPOptions{Seed: 1})))

	alg := ssrmin.New(5, 6)
	init := ssrmin.RandomConfig(alg, rand.New(rand.NewSource(9)))
	golden(t, "api_mp_random.txt", mpSummary(ssrmin.NewMPSimulation(5, ssrmin.MPOptions{
		Seed:             4,
		LossProb:         0.05,
		Hold:             0.02,
		Initial:          init,
		IncoherentCaches: true,
	})))
}
