# Development entry points. Everything is stdlib Go; no external tools.

GO ?= go

.PHONY: all build test test-race test-short cover bench experiments \
        experiments-quick modelcheck examples fmt vet clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

test-short:
	$(GO) test -short ./...

cover:
	$(GO) test -cover ./...

bench:
	$(GO) test -bench . -benchmem ./...

# Regenerate every paper artifact + extension ablations (see EXPERIMENTS.md).
experiments:
	$(GO) run ./cmd/experiments

experiments-quick:
	$(GO) run ./cmd/experiments -quick

# Exhaustive verification of the paper's lemmas (n=3 in ms, n=4 in ~2s).
modelcheck:
	$(GO) run ./cmd/modelcheck -n 3
	$(GO) run ./cmd/modelcheck -n 4

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/faultdemo -rounds 2
	$(GO) run ./examples/handover -ms 300
	$(GO) run ./examples/cameranet -seconds 2
	$(GO) run ./examples/lkcs -steps 30
	$(GO) run ./examples/tcpring -seconds 2

fmt:
	gofmt -l -w .

vet:
	$(GO) vet ./...

clean:
	$(GO) clean ./...
