# Development entry points. Everything is stdlib Go; no external tools.

GO ?= go

.PHONY: all build test test-race test-race-core test-short cover bench \
        bench-check bench-obs bench-msgnet bench-runtime bench-batch \
        bench-smoke experiments \
        experiments-quick modelcheck modelcheck-n5 examples fmt vet lint \
        fuzz-short soak-short clean

all: build vet lint test test-race-core soak-short

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

# Race-check the concurrency-heavy packages (the parallel ID-space engine,
# the sweep driver, the observer fed by live ring goroutines, the
# discrete-event network, and the goroutine-per-node runtime) without
# paying for the whole suite under -race.
test-race-core:
	$(GO) test -race ./internal/check ./internal/parsweep ./internal/obs \
	  ./internal/msgnet ./internal/runtime

test-short:
	$(GO) test -short ./...

cover:
	$(GO) test -cover ./...

bench:
	$(GO) test -bench . -benchmem ./...

# Track the model checker's perf trajectory: run the checker + sweep
# benchmarks and record (name, ns/op, allocs/op) in BENCH_check.json.
bench-check:
	$(GO) test -run '^$$' -bench 'ModelCheck|ParallelSweep' -benchmem . \
	  | $(GO) run ./cmd/benchjson -o BENCH_check.json

# Record the instrumentation layer's no-op-sink overhead on the hot paths
# (state-reading steps, discrete events) in BENCH_obs.json; the "nop"
# variants must stay within 5% of their "bare" twins.
bench-obs:
	$(GO) test -run '^$$' -bench 'ObsOverhead' -benchmem . \
	  | $(GO) run ./cmd/benchjson -o BENCH_obs.json

# Record the event-engine rebuild: legacy boxed heap vs zero-alloc arena
# under an n-node lossy/duplicating storm, in BENCH_msgnet.json. The
# acceptance bar for the arena at n=32 is >= 5x fewer allocs/op and
# >= 2x events/s against the legacy rows.
bench-msgnet:
	$(GO) test -run '^$$' -bench 'MsgnetStorm' -benchmem -count 3 . \
	  | $(GO) run ./cmd/benchjson -o BENCH_msgnet.json

# Record the sharded event-loop runtime: virtual-time engine throughput at
# n=10k and n=100k vs the wall-clock goroutine-per-node legacy ring at
# n=10k, in BENCH_runtime.json. The acceptance bar is >= 100k nodes
# sustained and >= 5x the legacy events/s at n=10k.
bench-runtime:
	$(GO) test -run '^$$' -bench 'RuntimeEngine' -benchmem -count 3 . \
	  | $(GO) run ./cmd/benchjson -o BENCH_runtime.json

# Record the bit-sliced batch simulator: 64-lane SSRmin convergence
# sweeps (the fig12 workload) against the scalar statemodel oracle, in
# BENCH_batch.json with seeds/s and steps/s custom metrics. The
# acceptance bar is >= 20x the scalar seeds/s at every ring size.
bench-batch:
	$(GO) test -run '^$$' -bench 'BitsliceBatch' -benchmem -count 3 \
	  ./internal/bitslice \
	  | $(GO) run ./cmd/benchjson -o BENCH_batch.json

# CI guard against silent perf rot: re-run the tracked benchmarks
# briefly (-benchtime 20x keeps the whole sweep under a second) and
# compare ns/op against the committed records. Shared-runner noise is
# huge at this length, so the threshold is deliberately generous — this
# catches order-of-magnitude rot (a debug print, an accidental O(n^2)),
# not percent drift.
bench-smoke:
	$(GO) test -run '^$$' -bench 'MsgnetStorm' -benchmem -benchtime 20x . \
	  | $(GO) run ./cmd/benchjson -o /tmp/bench_msgnet_smoke.json
	$(GO) run ./cmd/benchjson -compare -max-regress 400 \
	  BENCH_msgnet.json /tmp/bench_msgnet_smoke.json
	$(GO) test -run '^$$' -bench 'RuntimeEngine' -benchmem -benchtime 3x . \
	  | $(GO) run ./cmd/benchjson -o /tmp/bench_runtime_smoke.json
	$(GO) run ./cmd/benchjson -compare -max-regress 400 \
	  BENCH_runtime.json /tmp/bench_runtime_smoke.json
	$(GO) test -run '^$$' -bench 'BitsliceBatch' -benchmem -benchtime 5x \
	  ./internal/bitslice \
	  | $(GO) run ./cmd/benchjson -o /tmp/bench_batch_smoke.json
	$(GO) run ./cmd/benchjson -compare -max-regress 400 \
	  BENCH_batch.json /tmp/bench_batch_smoke.json

# Regenerate every paper artifact + extension ablations (see EXPERIMENTS.md).
experiments:
	$(GO) run ./cmd/experiments

experiments-quick:
	$(GO) run ./cmd/experiments -quick

# Exhaustive verification of the paper's lemmas on the compiled parallel
# engine (n=3 in ms, n=4 in ~0.3s). Exits non-zero on any lemma violation.
modelcheck:
	$(GO) run ./cmd/modelcheck -n 3
	$(GO) run ./cmd/modelcheck -n 4

# The big instance: 24^5 ≈ 7.96M configurations, ~1 GiB bookkeeping,
# minutes of CPU (scales with cores via -workers).
modelcheck-n5:
	$(GO) run ./cmd/modelcheck -n 5 -k 6

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/faultdemo -rounds 2
	$(GO) run ./examples/handover -ms 300
	$(GO) run ./examples/cameranet -seconds 2
	$(GO) run ./examples/lkcs -steps 30
	$(GO) run ./examples/tcpring -seconds 2

fmt:
	gofmt -l -w .

vet:
	$(GO) vet ./...

# Domain analyzers (internal/lint): locality of guards/commands,
# determinism of golden packages, observer nil-guard discipline, lock
# hygiene. Exits non-zero on any finding; see docs/LINT.md.
lint:
	$(GO) run ./cmd/ssrmin-lint ./...

# Bounded differential soak (cmd/ssrmin-soak over internal/crosscheck):
# seeded scenario sweeps through the state-reading, message-passing, and
# live execution tiers with the paper invariants — census, convergence
# bound, one-message-per-direction link rule, token separation — checked
# continuously. Exits non-zero (and writes a shrunk repro to
# testdata/repros/) on any violation. The deterministic tiers get the
# adversarial sweeps; the live tier gets a short wall-clock-bound sweep
# on one worker; the final invocation is the mutation search, a fixed
# budget of hill-climb runs over link knobs, fault storms, and
# churn/splice scripts — the dynamics the static sweeps never exercise.
soak-short:
	$(GO) run ./cmd/ssrmin-soak -seeds 12 -name soak-dup -n 4 \
	  -dup 0.3 -jitter 0.002 -engines state,msgnet -horizon 15
	$(GO) run ./cmd/ssrmin-soak -seeds 8 -name soak-storm -n 6 -random \
	  -incoherent -storm -loss 0.1 -dup 0.2 -corrupt 0.05 \
	  -engines state,msgnet -horizon 40 -settle 15
	$(GO) run ./cmd/ssrmin-soak -seeds 3 -name soak-live -engines live \
	  -horizon 5 -workers 1
	$(GO) run ./cmd/ssrmin-soak -name soak-search -search -churn \
	  -search-restarts 3 -search-budget 25 -seed 1 -n 5 -k 12 \
	  -engines state,msgnet,live -horizon 16 -settle 7

# A quick pass over every native fuzz target (corpus + a few seconds of
# mutation each); the committed seed corpora always run as plain tests.
fuzz-short:
	$(GO) test -run '^$$' -fuzz FuzzParseDaemon -fuzztime 5s ./internal/cliconf
	$(GO) test -run '^$$' -fuzz FuzzConfigFlags -fuzztime 5s ./internal/cliconf
	$(GO) test -run '^$$' -fuzz FuzzJSONLEmit -fuzztime 5s ./internal/obs
	$(GO) test -run '^$$' -fuzz FuzzWaiverParse -fuzztime 5s ./internal/lint
	$(GO) test -run '^$$' -fuzz FuzzBitsliceStep -fuzztime 5s ./internal/bitslice

clean:
	$(GO) clean ./...
