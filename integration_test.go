package ssrmin_test

// Cross-layer integration tests: the same algorithm core driven through
// every execution vehicle in one journey, checking that the guarantees
// compose — state-reading convergence feeding the message-passing
// simulation, the live goroutine ring, and the TCP deployment.

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"ssrmin"
)

// TestJourneyStateReadingToMessagePassing converges a garbage
// configuration in the state-reading model, hands the resulting legitimate
// configuration to the message-passing simulation as its initial state,
// and requires the MP census to stay within [1,2] from the very first
// instant — legitimacy survives the model change (Theorem 3's hypothesis
// is exactly "legitimate with coherent caches").
func TestJourneyStateReadingToMessagePassing(t *testing.T) {
	alg := ssrmin.New(6, 7)
	rng := rand.New(rand.NewSource(21))

	sim := ssrmin.NewSimulation(6, ssrmin.WithK(7),
		ssrmin.WithInitial(ssrmin.RandomConfig(alg, rng)),
		ssrmin.WithDaemon(ssrmin.DistributedDaemon(2, 0.5)))
	if _, ok := sim.RunUntilLegitimate(alg.ConvergenceStepBound()); !ok {
		t.Fatal("state-reading convergence failed")
	}
	legit := sim.Config()

	mp := ssrmin.NewMPSimulation(6, ssrmin.WithK(7), ssrmin.WithSeed(3), ssrmin.WithInitial(legit))
	mp.Run(10)
	tl := mp.Timeline()
	if tl.MinCount() < 1 || tl.MaxCount() > 2 {
		t.Fatalf("census [%d,%d] after handing a legitimate config to MP", tl.MinCount(), tl.MaxCount())
	}
}

// TestJourneyMPToLive runs the MP simulation from garbage until settled,
// then starts a live goroutine ring from the settled state vector and
// samples it — the configuration crosses from simulated to wall-clock time
// without losing the invariant.
func TestJourneyMPToLive(t *testing.T) {
	alg := ssrmin.New(5, 6)
	rng := rand.New(rand.NewSource(5))
	mp := ssrmin.NewMPSimulation(5,
		ssrmin.WithSeed(4),
		ssrmin.WithInitial(ssrmin.RandomConfig(alg, rng)),
		ssrmin.WithIncoherentCaches(),
	)
	mp.Run(30)
	settled := mp.States()

	live := ssrmin.NewLiveRing(5,
		ssrmin.WithDelay(300*time.Microsecond),
		ssrmin.WithRefresh(2*time.Millisecond),
		ssrmin.WithSeed(6),
		ssrmin.WithInitial(settled),
	)
	live.Start()
	defer live.Stop()
	stats := live.WatchCensus(200*time.Millisecond, 100*time.Microsecond)
	if stats.Min < 1 || stats.Max > 2 {
		t.Fatalf("live census %+v after settled MP handoff", stats)
	}
}

// TestAllVehiclesHoldInvariantConcurrently runs the three vehicles side by
// side (they are independent; this catches cross-talk through shared
// global state, of which there must be none).
func TestAllVehiclesHoldInvariantConcurrently(t *testing.T) {
	done := make(chan error, 3)

	go func() {
		sim := ssrmin.NewSimulation(5, ssrmin.WithDaemon(ssrmin.CentralDaemon(7)))
		for i := 0; i < 2000; i++ {
			sim.Step()
			if c := sim.Census(); c.Privileged < 1 || c.Privileged > 2 {
				done <- errf("state-reading census %d", c.Privileged)
				return
			}
		}
		done <- nil
	}()
	go func() {
		mp := ssrmin.NewMPSimulation(5, ssrmin.WithSeed(8))
		mp.Run(5)
		tl := mp.Timeline()
		if tl.MinCount() < 1 || tl.MaxCount() > 2 {
			done <- errf("MP census [%d,%d]", tl.MinCount(), tl.MaxCount())
			return
		}
		done <- nil
	}()
	go func() {
		live := ssrmin.NewLiveRing(5,
			ssrmin.WithDelay(300*time.Microsecond),
			ssrmin.WithRefresh(2*time.Millisecond),
			ssrmin.WithSeed(9),
		)
		live.Start()
		defer live.Stop()
		stats := live.WatchCensus(150*time.Millisecond, 100*time.Microsecond)
		if stats.Min < 1 || stats.Max > 2 {
			done <- errf("live census %+v", stats)
			return
		}
		done <- nil
	}()

	for i := 0; i < 3; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// TestTCPRingFacade is the end-to-end socket deployment through the public
// API, with a live fault in the middle.
func TestTCPRingFacade(t *testing.T) {
	ring, err := ssrmin.StartTCPRing(5, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer ring.Stop()
	if len(ring.Addrs()) != 5 {
		t.Fatalf("Addrs = %v", ring.Addrs())
	}
	time.Sleep(100 * time.Millisecond)

	visited := map[int]bool{}
	deadline := time.Now().Add(10 * time.Second)
	for len(visited) < 5 && time.Now().Before(deadline) {
		for _, h := range ring.Holders() {
			visited[h] = true
		}
		time.Sleep(500 * time.Microsecond)
	}
	if len(visited) != 5 {
		t.Fatalf("TCP circulation incomplete: %v", visited)
	}

	ring.Inject(2, ssrmin.State{X: 3, RTS: true, TRA: true})
	time.Sleep(300 * time.Millisecond)
	min, max := 1<<30, -1
	for i := 0; i < 400; i++ {
		c := ring.Census()
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
		time.Sleep(200 * time.Microsecond)
	}
	if min < 1 || max > 2 {
		t.Fatalf("TCP census [%d,%d] after fault", min, max)
	}
}

func errf(format string, args ...any) error { return fmt.Errorf(format, args...) }
