package ssrmin

// One benchmark per evaluation artifact of the paper (see DESIGN.md's
// experiment index). Absolute numbers depend on the host; the *shapes* —
// who wins, how costs scale with n, where the graceful handover's
// overhead lands — are the reproduction targets:
//
//	BenchmarkCirculation        Fig 1/4:  3 steps per position advance
//	BenchmarkConvergence        Thm 2:    steps grow ≈ n^1.2–1.7 ≤ n²
//	BenchmarkConvergenceSSToken Lemma 8:  baseline converges faster
//	BenchmarkMPGracefulHandover Fig 13:   0 zero-token time for SSRmin
//	BenchmarkMPSSToken          Fig 11:   large zero-token time for SSToken
//	BenchmarkModelCheck         Lemmas:   exhaustive verification cost,
//	                                      legacy vs table-compiled engine
//	BenchmarkParallelSweepContention      atomic vs per-item dispatch cost
//	BenchmarkRuleEvaluation     (micro)   guard evaluation cost
//	BenchmarkDiscreteEvents     (micro)   simulator event throughput
//	BenchmarkMsgnetStorm        (micro)   legacy heap vs zero-alloc arena
//	                                      under a lossy/duplicating storm
//	BenchmarkSynchronizer       §1.3:     α-synchronizer round throughput
//	BenchmarkComposed           [9]:      (m,2m)-CS composition step cost
//	BenchmarkParallelSweep      harness:  parallel vs sequential sweeps
//	BenchmarkLiveRing           §5:       live goroutine ring throughput
//	BenchmarkRuntimeEngine      §5:       sharded event-loop engine vs the
//	                                      goroutine-per-node legacy runtime

import (
	"fmt"
	"math/rand"
	goruntime "runtime"
	"testing"
	"time"

	"ssrmin/internal/check"
	"ssrmin/internal/compose"
	"ssrmin/internal/core"
	"ssrmin/internal/cst"
	"ssrmin/internal/daemon"
	"ssrmin/internal/dijkstra"
	"ssrmin/internal/msgnet"
	"ssrmin/internal/parsweep"
	"ssrmin/internal/runtime"
	"ssrmin/internal/statemodel"
	"ssrmin/internal/synchro"
)

// BenchmarkCirculation measures one full two-token rotation (3n steps) in
// the state-reading model — the steady-state cost of Figure 1/4.
func BenchmarkCirculation(b *testing.B) {
	for _, n := range []int{5, 16, 64, 256} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			alg := core.New(n, n+1)
			sim := statemodel.NewSimulator[core.State](alg, daemon.NewCentralLowest(), alg.InitialLegitimate())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sim.Run(3 * n)
			}
			b.ReportMetric(float64(3*n), "steps/rotation")
		})
	}
}

// BenchmarkConvergence measures convergence from random configurations
// under the random distributed daemon — the Theorem 2 experiment.
func BenchmarkConvergence(b *testing.B) {
	for _, n := range []int{8, 16, 32, 64} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			alg := core.New(n, n+1)
			rng := rand.New(rand.NewSource(1))
			totalSteps := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				init := randomSSRminConfig(alg, rng)
				d := daemon.NewRandomSubset(rand.New(rand.NewSource(int64(i))), 0.5)
				sim := statemodel.NewSimulator[core.State](alg, d, init)
				b.StartTimer()
				steps, ok := sim.RunUntil(alg.Legitimate, alg.ConvergenceStepBound())
				if !ok {
					b.Fatal("no convergence within the O(n²) budget")
				}
				totalSteps += steps
			}
			b.ReportMetric(float64(totalSteps)/float64(b.N), "steps/convergence")
		})
	}
}

// BenchmarkConvergenceSSToken is the Dijkstra baseline of Lemma 8.
func BenchmarkConvergenceSSToken(b *testing.B) {
	for _, n := range []int{8, 16, 32, 64} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			alg := dijkstra.New(n, n+1)
			rng := rand.New(rand.NewSource(1))
			totalSteps := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				init := make(statemodel.Config[dijkstra.State], n)
				for j := range init {
					init[j] = dijkstra.State{X: rng.Intn(n + 1)}
				}
				d := daemon.NewRandomSubset(rand.New(rand.NewSource(int64(i))), 0.5)
				sim := statemodel.NewSimulator[dijkstra.State](alg, d, init)
				b.StartTimer()
				steps, ok := sim.RunUntil(alg.SingleToken, alg.ConvergenceBound()+1)
				if !ok {
					b.Fatal("SSToken exceeded 3n(n−1)/2")
				}
				totalSteps += steps
			}
			b.ReportMetric(float64(totalSteps)/float64(b.N), "steps/convergence")
		})
	}
}

// BenchmarkMPGracefulHandover simulates 10s of message-passing SSRmin and
// reports the zero-token fraction (expected: exactly 0) and the message
// cost — the Figure 13 experiment.
func BenchmarkMPGracefulHandover(b *testing.B) {
	for _, n := range []int{5, 16, 64} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			zeroTime, msgs, advances := 0.0, 0, 0
			for i := 0; i < b.N; i++ {
				m := NewMPSimulation(n, WithSeed(int64(i+1)))
				m.Run(10)
				tl := m.Timeline()
				zeroTime += tl.Duration(0)
				msgs += m.MessagesSent()
				advances += m.RuleExecutions() / 3
			}
			if zeroTime != 0 {
				b.Fatalf("SSRmin spent %v simulated seconds with zero tokens", zeroTime)
			}
			b.ReportMetric(float64(msgs)/float64(b.N), "msgs/10s")
			b.ReportMetric(float64(advances)/float64(b.N), "advances/10s")
			b.ReportMetric(0, "zero-token-s")
		})
	}
}

// BenchmarkMPSSToken is the Figure 11 baseline: the same network, plain
// Dijkstra — reports the (large) zero-token fraction.
func BenchmarkMPSSToken(b *testing.B) {
	for _, n := range []int{5, 16, 64} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			zeroFrac := 0.0
			for i := 0; i < b.N; i++ {
				alg := dijkstra.New(n, n+1)
				r := cst.NewRing[dijkstra.State](alg, alg.InitialLegitimate(), cst.Options[dijkstra.State]{
					Link:           msgnet.LinkParams{Delay: 0.01, Jitter: 0.002},
					Refresh:        0.05,
					Hold:           0.02,
					Seed:           int64(i + 1),
					CoherentCaches: true,
				})
				var tl timelineLite
				r.Net.Observer = func(now msgnet.Time) {
					tl.record(float64(now), r.Census(dijkstra.HasToken))
				}
				r.Net.Run(10)
				zeroFrac += tl.zero / float64(r.Net.Now())
			}
			b.ReportMetric(100*zeroFrac/float64(b.N), "zero-token-%")
		})
	}
}

// BenchmarkModelCheck measures exhaustive verification (closure +
// convergence longest-path) on the legacy Decode/Encode checker vs. the
// table-compiled single-threaded engine, per instance. The engine's
// speedup comes from the compiled transition tables alone here (workers =
// 1); parallel scaling is on top.
func BenchmarkModelCheck(b *testing.B) {
	cases := []struct{ n, k, worst int }{{3, 4, 16}, {4, 5, 43}}
	for _, tc := range cases {
		alg := core.New(tc.n, tc.k)
		b.Run(fmt.Sprintf("legacy/n=%d,K=%d", tc.n, tc.k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c := check.New[core.State](alg, 0)
				rep := c.CheckClosure(alg.Legitimate)
				if rep.Counterexample != nil {
					b.Fatal("closure failed")
				}
				conv := c.CheckConvergence(alg.Legitimate)
				if !conv.Converges || conv.WorstSteps != tc.worst {
					b.Fatalf("convergence check wrong: %+v", conv.WorstSteps)
				}
			}
		})
		b.Run(fmt.Sprintf("engine/n=%d,K=%d", tc.n, tc.k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c := check.New[core.State](alg, 0)
				e, err := c.Compile(1)
				if err != nil {
					b.Fatal(err)
				}
				lam := e.LegitSet(alg.Legitimate)
				rep := e.CheckClosure(lam)
				if rep.Counterexample != nil {
					b.Fatal("closure failed")
				}
				conv, _ := e.CheckConvergence(lam)
				if !conv.Converges || conv.WorstSteps != tc.worst {
					b.Fatalf("convergence check wrong: %+v", conv.WorstSteps)
				}
			}
		})
	}
}

// BenchmarkRuleEvaluation is the micro cost of one guard evaluation —
// what every node pays per received message.
func BenchmarkRuleEvaluation(b *testing.B) {
	alg := core.New(64, 65)
	cfg := alg.InitialLegitimate()
	views := make([]statemodel.View[core.State], len(cfg))
	for i := range cfg {
		views[i] = cfg.View(i)
	}
	b.ResetTimer()
	sum := 0
	for i := 0; i < b.N; i++ {
		sum += alg.EnabledRule(views[i%len(views)])
	}
	if sum < 0 {
		b.Fatal("impossible")
	}
}

// BenchmarkDiscreteEvents measures raw event throughput of the
// discrete-event network running the full CST stack.
func BenchmarkDiscreteEvents(b *testing.B) {
	for _, n := range []int{8, 64} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			alg := core.New(n, n+1)
			r := cst.NewRing[core.State](alg, alg.InitialLegitimate(), cst.Options[core.State]{
				Link:           msgnet.LinkParams{Delay: 0.01, Jitter: 0.002},
				Refresh:        0.05,
				Seed:           1,
				CoherentCaches: true,
			})
			b.ResetTimer()
			events := 0
			horizon := msgnet.Time(0)
			for i := 0; i < b.N; i++ {
				horizon += 1
				events += r.Net.Run(horizon)
			}
			b.ReportMetric(float64(events)/float64(b.N), "events/op")
		})
	}
}

// BenchmarkMsgnetStorm is the event-engine shoot-out: the legacy boxed
// container/heap queue against the zero-alloc arena, each driving the
// same lossy, jittery, duplicating, corrupting CST storm (incoherent
// caches keep every node arguing, so the ring never quiesces). The two
// engines are bit-identical in behaviour (see internal/msgnet's
// differential test); this benchmark records what that behaviour costs —
// B/op and allocs/op per simulated-time window plus raw events/s. The
// committed snapshot lives in BENCH_msgnet.json (`make bench-msgnet`).
func BenchmarkMsgnetStorm(b *testing.B) {
	for _, engine := range []string{"legacy", "arena"} {
		for _, n := range []int{8, 32, 128} {
			b.Run(fmt.Sprintf("%s/n=%d", engine, n), func(b *testing.B) {
				alg := core.New(n, n+1)
				draw := func(r *rand.Rand) core.State {
					return core.State{X: r.Intn(n + 1), RTS: r.Intn(2) == 1, TRA: r.Intn(2) == 1}
				}
				r := cst.NewRing[core.State](alg, alg.InitialLegitimate(), cst.Options[core.State]{
					Link: msgnet.LinkParams{
						Delay: 0.01, Jitter: 0.003,
						LossProb: 0.1, DupProb: 0.2, CorruptProb: 0.05,
					},
					Refresh:        0.05,
					Seed:           1,
					CoherentCaches: false,
					RandomState:    draw,
				})
				r.Net.Legacy = engine == "legacy"
				r.Net.Corrupt = func(rng *rand.Rand, payload core.State) core.State { return draw(rng) }
				b.ResetTimer()
				events := 0
				horizon := msgnet.Time(0)
				for i := 0; i < b.N; i++ {
					horizon += 0.5
					events += r.Net.Run(horizon)
				}
				b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
			})
		}
	}
}

// timelineLite tracks only time-at-zero, cheaply, for benches.
type timelineLite struct {
	last  float64
	count int
	zero  float64
	init  bool
}

func (t *timelineLite) record(now float64, count int) {
	if t.init && t.count == 0 {
		t.zero += now - t.last
	}
	t.last, t.count, t.init = now, count, true
}

func randomSSRminConfig(a *core.Algorithm, rng *rand.Rand) statemodel.Config[core.State] {
	c := make(statemodel.Config[core.State], a.N())
	for i := range c {
		c[i] = core.State{X: rng.Intn(a.K()), RTS: rng.Intn(2) == 1, TRA: rng.Intn(2) == 1}
	}
	return c
}

// BenchmarkSynchronizer measures round throughput of the α-synchronizer
// transform (the expensive alternative the "transforms" experiment
// compares against CST).
func BenchmarkSynchronizer(b *testing.B) {
	for _, n := range []int{5, 16} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			alg := core.New(n, n+1)
			r := synchro.NewRing[core.State](alg, alg.InitialLegitimate(),
				msgnet.LinkParams{Delay: 0.01, Jitter: 0.002}, 0.05, 1)
			b.ResetTimer()
			horizon := msgnet.Time(0)
			for i := 0; i < b.N; i++ {
				horizon += 1
				r.Net.Run(horizon)
			}
			b.ReportMetric(float64(r.MinRound())/float64(b.N), "rounds/op")
		})
	}
}

// BenchmarkComposed measures the step cost of the (m,2m)-CS composition.
func BenchmarkComposed(b *testing.B) {
	for _, m := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			inner := core.New(8, 9)
			c := compose.New[core.State](inner, m)
			parts := make([]statemodel.Config[core.State], m)
			for j := range parts {
				sim := statemodel.NewSimulator[core.State](inner, daemon.NewCentralLowest(), inner.InitialLegitimate())
				sim.Run(3 * j)
				parts[j] = sim.Config()
			}
			sim := statemodel.NewSimulator[compose.MultiState[core.State]](c,
				daemon.NewRandomSubset(rand.New(rand.NewSource(1)), 0.5), c.Pack(parts...))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, ok := sim.Step(); !ok {
					b.Fatal("deadlock")
				}
			}
		})
	}
}

// BenchmarkParallelSweep measures the sweep driver against the sequential
// baseline on a convergence workload.
func BenchmarkParallelSweep(b *testing.B) {
	work := func(i int) float64 {
		alg := core.New(12, 13)
		rng := rand.New(rand.NewSource(int64(i)))
		init := randomSSRminConfig(alg, rng)
		d := daemon.NewRandomSubset(rand.New(rand.NewSource(int64(i))), 0.5)
		sim := statemodel.NewSimulator[core.State](alg, d, init)
		steps, _ := sim.RunUntil(alg.Legitimate, alg.ConvergenceStepBound())
		return float64(steps)
	}
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			parsweep.Map(64, 1, work)
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			parsweep.Map(64, 0, work)
		}
	})
}

// BenchmarkParallelSweepContention stresses the sweep driver's work-index
// grab with tiny per-item work, where the dispatch cost dominates — the
// case the lock-free atomic counter (vs. the old mutex) wins.
func BenchmarkParallelSweepContention(b *testing.B) {
	const items = 1 << 14
	work := func(i int) int { return i * i }
	for _, workers := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				out := parsweep.Map(items, workers, work)
				if out[3] != 9 {
					b.Fatal("wrong result")
				}
			}
		})
	}
}

// BenchmarkLiveRing measures wall-clock advance throughput of the real
// goroutine deployment (short windows; dominated by the configured link
// delay, as it should be).
func BenchmarkLiveRing(b *testing.B) {
	ring := NewLiveRing(5,
		WithDelay(200*time.Microsecond),
		WithJitter(50*time.Microsecond),
		WithRefresh(time.Millisecond),
		WithSeed(1),
		WithLegacyRuntime(),
	)
	ring.Start()
	defer ring.Stop()
	b.ResetTimer()
	start := ring.RuleExecutions()
	for i := 0; i < b.N; i++ {
		time.Sleep(time.Millisecond)
	}
	execs := ring.RuleExecutions() - start
	b.ReportMetric(float64(execs)/float64(b.N), "rules/ms")
}

// BenchmarkRuntimeEngine measures sustained event throughput of the
// sharded virtual-time engine at scale, against the goroutine-per-node
// legacy runtime at n=10k. The engine advances unscaled virtual time, so
// its events/s is bounded by dispatch cost; the legacy ring is paced by
// real link delays, which is exactly the gap the engine exists to close.
// The worker count is an explicit benchmark dimension — recorded as the
// workers/run metric — so committed BENCH_runtime.json numbers say what
// parallelism they were taken at instead of silently inheriting
// GOMAXPROCS.
func BenchmarkRuntimeEngine(b *testing.B) {
	ropts := runtime.Options[core.State]{
		Delay:          10 * time.Millisecond,
		Jitter:         2 * time.Millisecond,
		Refresh:        50 * time.Millisecond,
		Seed:           1,
		CoherentCaches: true,
	}
	for _, n := range []int{10000, 100000} {
		for _, w := range []int{1, 4} {
			b.Run(fmt.Sprintf("engine/n=%d,w=%d", n, w), func(b *testing.B) {
				opts := ropts
				opts.Workers = w
				alg := core.New(n, n+1)
				eng := runtime.NewEngine[core.State](alg, alg.InitialLegitimate(), opts)
				b.ResetTimer()
				start := eng.Stats().Events
				for i := 0; i < b.N; i++ {
					eng.RunUntil(eng.Now() + 0.05)
				}
				events := eng.Stats().Events - start
				b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
				b.ReportMetric(float64(n), "nodes/ring")
				b.ReportMetric(float64(eng.Workers()), "workers/run")
			})
		}
	}
	b.Run("legacy/n=10000", func(b *testing.B) {
		const n = 10000
		alg := core.New(n, n+1)
		ring := runtime.NewRing[core.State](alg, alg.InitialLegitimate(), ropts)
		ring.Start()
		defer ring.Stop()
		b.ResetTimer()
		rules := ring.RuleExecutions()
		carried, _ := ring.LinkStats()
		for i := 0; i < b.N; i++ {
			time.Sleep(50 * time.Millisecond)
		}
		dr := ring.RuleExecutions() - rules
		dc, _ := ring.LinkStats()
		events := dr + (dc - carried)
		b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
		b.ReportMetric(float64(n), "nodes/ring")
		// The legacy ring runs one goroutine per node; the schedulable
		// parallelism underneath is GOMAXPROCS.
		b.ReportMetric(float64(goruntime.GOMAXPROCS(0)), "workers/run")
	})
}
